"""Microbenchmark definitions for ``repro perfbench``.

Each microbenchmark builds a fresh engine, optionally warms the pool,
and times a single workload drive through the simulator hot path. The
same workload runs in two lanes:

* ``fast`` — the batched fast lane (``BufferPool.access_batch`` +
  precomputed latency tables), the default execution mode.
* ``compat`` — the scalar reference lane that recomputes per-access
  arithmetic the way the pre-fast-lane simulator did.

Both lanes must produce **byte-identical simulated results**; the
digest of the run report is part of the benchmark output and is
compared across lanes (and against the committed baseline) so a fast
lane that drifts from the physics fails loudly, not quietly.

Traces are materialised into lists before the timed region so the
measurement captures the simulator hot path, not the trace generator.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Callable

from ..core.engine import EngineReport, ScaleUpEngine
from ..errors import ConfigError
from ..workloads.scans import mixed_htap_trace, scan_trace
from ..workloads.ycsb import YCSBConfig, ycsb_trace


@dataclass(frozen=True, slots=True)
class BenchSpec:
    """A named wall-clock microbenchmark with its speedup floor."""

    name: str
    description: str
    min_speedup: float
    builder: Callable[[float], tuple[ScaleUpEngine, list]]


def _set_lane(engine: ScaleUpEngine, fast: bool) -> None:
    """Select the execution lane on *engine*'s pool.

    Tolerates pools that predate the fast lane (everything is then the
    scalar path) so the harness can record pre-change timings.
    """
    pool = engine.pool
    if hasattr(pool, "set_fast_lane"):
        pool.set_fast_lane(fast)


def _digest_report(engine: ScaleUpEngine, report: EngineReport) -> str:
    """A content digest over every simulated quantity the run produced.

    Floats are serialised with ``repr`` so the digest is sensitive to
    the last ulp — the byte-identity contract, not an approximation.
    """
    stats = engine.pool.stats
    payload = {
        "total_ns": repr(report.total_ns),
        "demand_ns": repr(report.demand_ns),
        "think_ns": repr(report.think_ns),
        "ops": report.ops,
        "misses": report.misses,
        "migrations": report.migrations,
        "hit_rate": repr(report.hit_rate),
        "tier_hit_rates": [repr(rate) for rate in report.tier_hit_rates],
        "clock_now": repr(engine.pool.clock.now),
        "pool": {
            "accesses": stats.accesses,
            "misses": stats.misses,
            "writebacks": stats.writebacks,
            "migrations": stats.migrations,
            "demand_time_ns": repr(stats.demand_time_ns),
            "fault_time_ns": repr(stats.fault_time_ns),
            "migration_time_ns": repr(stats.migration_time_ns),
            "per_tier": [tier.snapshot() for tier in stats.per_tier],
        },
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# -- microbenchmark builders -------------------------------------------------
#
# Builders return ``(engine, trace)`` with the pool already warmed; the
# runner times only ``engine.run(trace)``. ``scale`` shrinks the
# workload for tests (scale < 1) without changing its shape.


def _scan_builder(scale: float) -> tuple[ScaleUpEngine, list]:
    """Sequential scan over a CXL-resident table: the E5/A8 shape.

    After warming, every access is a tier hit, so the run measures the
    pure hit-path cost — where the batched lane amortises per-access
    bookkeeping over whole page runs.
    """
    pages = max(64, int(3000 * scale))
    repeats = 8
    engine = ScaleUpEngine.build(
        dram_pages=max(32, pages // 6),
        cxl_pages=pages + pages // 2,
        name="perf-scan",
    )
    engine.warm_with(scan_trace(0, pages, repeats=1, think_ns=0.0))
    trace = list(scan_trace(0, pages, repeats=repeats))
    return engine, trace


def _oltp_builder(scale: float) -> tuple[ScaleUpEngine, list]:
    """Zipfian YCSB-B point traffic over a DRAM+CXL split: the E7 shape.

    The working set fits across DRAM + CXL — the paper's capacity
    thesis — so after warming the run is hit-dominated: short mixed
    read/write runs, live migrations from the cost-based placement
    policy, and frequent coalescer flushes at write boundaries.
    """
    pages = max(64, int(3000 * scale))
    ops = max(256, int(30_000 * scale))
    engine = ScaleUpEngine.build(
        dram_pages=max(16, pages // 5),
        cxl_pages=pages,
        name="perf-oltp",
    )
    # Fault every page in, then heat the Zipf head so placement has
    # realistic temperatures (and live promotions) during the run.
    engine.warm_with(scan_trace(0, pages, repeats=1, think_ns=0.0))
    engine.warm_with(ycsb_trace(YCSBConfig(
        mix="C", num_pages=pages, num_ops=min(ops, 4 * pages), seed=7,
    )))
    trace = list(ycsb_trace(YCSBConfig(
        mix="B", num_pages=pages, num_ops=ops, seed=11,
    )))
    return engine, trace


def _htap_builder(scale: float) -> tuple[ScaleUpEngine, list]:
    """Interleaved OLTP + scan traffic (Sec 3.1 interference mix).

    With ``oltp_per_olap=1`` the access shape changes on *every*
    operation, so each coalesced run has length one and the batch lane
    degenerates to its scalar fallback — this bench guards the floor
    of the optimisation (timing tables only), not its ceiling.
    """
    oltp_pages = max(64, int(1500 * scale))
    olap_pages = max(64, int(4000 * scale))
    engine = ScaleUpEngine.build(
        dram_pages=max(32, oltp_pages),
        cxl_pages=olap_pages + olap_pages // 2,
        name="perf-htap",
    )
    engine.warm_with(scan_trace(0, oltp_pages + olap_pages, repeats=1,
                                think_ns=0.0))
    trace = list(mixed_htap_trace(
        oltp_pages=oltp_pages,
        olap_pages=olap_pages,
        oltp_ops=max(256, int(8_000 * scale)),
        olap_repeats=2,
        oltp_per_olap=1,
        seed=23,
    ))
    return engine, trace


MICROBENCHES: dict[str, BenchSpec] = {
    "scan": BenchSpec(
        name="scan",
        description="sequential scan, warm CXL-resident table (hit path)",
        min_speedup=3.0,
        builder=_scan_builder,
    ),
    "oltp": BenchSpec(
        name="oltp",
        description="zipfian YCSB-B point traffic, DRAM+CXL with live placement",
        min_speedup=1.5,
        builder=_oltp_builder,
    ),
    "htap": BenchSpec(
        name="htap",
        description="per-op alternating OLTP/scan mix (coalescer worst case)",
        min_speedup=1.0,
        builder=_htap_builder,
    ),
}


def run_microbench(name: str, fast: bool,
                   scale: float = 1.0) -> tuple[float, str]:
    """Run one microbenchmark in one lane.

    Returns ``(wall_seconds, sim_digest)`` where the digest covers every
    simulated quantity of the run (clock, demand time, pool counters).
    """
    spec = MICROBENCHES.get(name)
    if spec is None:
        raise ConfigError(
            f"unknown microbenchmark {name!r};"
            f" known: {', '.join(sorted(MICROBENCHES))}"
        )
    engine, trace = spec.builder(scale)
    _set_lane(engine, fast)
    start = time.perf_counter()
    report = engine.run(trace, label=f"perf:{name}")
    wall_s = time.perf_counter() - start
    return wall_s, _digest_report(engine, report)
