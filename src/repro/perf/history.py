"""Perf trajectory across committed baselines (``BENCH_PR*.json``).

``repro perfbench --history`` reads every ``results/bench/BENCH_PR*.json``
in PR order and prints, per microbenchmark, how the fast/compat speedup
ratio moved from baseline to baseline. The ratio is in-process and
machine-independent, so baselines recorded on different machines are
comparable — unlike the raw wall-clock numbers, which the table omits.

The summary lists regressions (a bench slower in the newest baseline
that records it than in the previous one) *before* wins, so a drop is
the first thing a reader sees.

When ``results/bench/TARGETS.json`` exists, ``--history`` also *gates*
the trajectory against it (:func:`check_targets`): per-bench speedup
floors, a geometric-mean target over the latest baseline, and a
zero-regression ratchet (latest >= previous * regression_factor per
bench). The gate runs over committed numbers only — no benches are
re-run — so it is deterministic and safe for CI.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ConfigError
from .runner import SCHEMA

BENCH_DIR = Path("results/bench")
_BASELINE_RE = re.compile(r"^BENCH_PR(\d+)\.json$")

TARGETS_PATH = BENCH_DIR / "TARGETS.json"
TARGETS_SCHEMA = "repro.perfbench-targets/v1"


@dataclass(frozen=True, slots=True)
class BenchTrend:
    """One microbenchmark's speedup across the baselines that record it."""

    name: str
    # (pr_number, speedup) in PR order, only PRs that ran this bench.
    points: tuple[tuple[int, float], ...]

    @property
    def latest(self) -> float:
        return self.points[-1][1]

    @property
    def delta(self) -> float | None:
        """Change from the previous baseline that recorded this bench."""
        if len(self.points) < 2:
            return None
        return self.points[-1][1] - self.points[-2][1]

    @property
    def regressed(self) -> bool:
        delta = self.delta
        return delta is not None and delta < 0


@dataclass(frozen=True, slots=True)
class PerfHistory:
    """All committed baselines, parsed into per-bench trajectories."""

    pr_numbers: tuple[int, ...]
    trends: tuple[BenchTrend, ...]
    skipped: tuple[str, ...] = field(default=())

    @property
    def regressions(self) -> tuple[BenchTrend, ...]:
        return tuple(t for t in self.trends if t.regressed)

    @property
    def wins(self) -> tuple[BenchTrend, ...]:
        return tuple(t for t in self.trends if not t.regressed)


def collect_history(bench_dir: Path | str = BENCH_DIR) -> PerfHistory:
    """Parse every ``BENCH_PR<n>.json`` under *bench_dir* in PR order.

    Files that fail to parse or carry an unexpected schema are skipped
    and reported in ``PerfHistory.skipped`` rather than aborting the
    whole trajectory.
    """
    root = Path(bench_dir)
    if not root.is_dir():
        raise ConfigError(f"no perfbench baseline directory at {root}")
    numbered: list[tuple[int, Path]] = []
    for path in root.iterdir():
        match = _BASELINE_RE.match(path.name)
        if match:
            numbered.append((int(match.group(1)), path))
    if not numbered:
        raise ConfigError(
            f"no BENCH_PR*.json baselines under {root};"
            " run `repro perfbench --out` to record one"
        )
    numbered.sort()

    skipped: list[str] = []
    reports: list[tuple[int, dict]] = []
    for number, path in numbered:
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            skipped.append(f"{path.name}: unreadable ({exc})")
            continue
        if data.get("schema") != SCHEMA:
            skipped.append(
                f"{path.name}: schema {data.get('schema')!r}"
                f" != {SCHEMA!r}"
            )
            continue
        reports.append((number, data))
    if not reports:
        raise ConfigError(
            f"no readable perfbench baselines under {root}"
            f" ({'; '.join(skipped)})"
        )

    names: list[str] = []
    for _, data in reports:
        for name in sorted(data.get("benches", {})):
            if name not in names:
                names.append(name)
    trends = []
    for name in names:
        points = tuple(
            (number, float(entry["speedup"]))
            for number, data in reports
            for entry in [data.get("benches", {}).get(name)]
            if entry is not None and "speedup" in entry
        )
        if points:
            trends.append(BenchTrend(name=name, points=points))
    return PerfHistory(
        pr_numbers=tuple(number for number, _ in reports),
        trends=tuple(trends),
        skipped=tuple(skipped),
    )


def load_targets(path: Path | str = TARGETS_PATH) -> dict | None:
    """Load the perf targets file, or None when it does not exist.

    Raises :class:`ConfigError` when the file exists but is unreadable
    or carries the wrong schema — a present-but-broken targets file
    must fail the gate, not silently disable it.
    """
    targets_path = Path(path)
    if not targets_path.exists():
        return None
    try:
        data = json.loads(targets_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"unreadable targets file {targets_path}: {exc}")
    if data.get("schema") != TARGETS_SCHEMA:
        raise ConfigError(
            f"targets file {targets_path} has schema"
            f" {data.get('schema')!r}, expected {TARGETS_SCHEMA!r}"
        )
    return data


def check_targets(history: PerfHistory, targets: dict) -> list[str]:
    """Gate the committed trajectory against *targets*; return failures.

    Three rules, all over committed baseline numbers (the exact metric
    definitions live next to the numbers in TARGETS.json):

    * every bench named in ``per_bench_floor`` that the latest baseline
      records must meet its floor there;
    * the geometric mean of every speedup in the latest baseline must
      be >= ``geomean_min``;
    * for every bench with at least two recordings,
      ``latest >= previous * regression_factor``.
    """
    failures: list[str] = []
    floors = targets.get("per_bench_floor", {})
    factor = targets.get("regression_factor")
    latest_pr = history.pr_numbers[-1] if history.pr_numbers else None
    latest: list[float] = []
    for trend in history.trends:
        if trend.points[-1][0] != latest_pr:
            # Not recorded by the newest baseline: the targets rules
            # are defined over the latest recording set only.
            continue
        value = trend.latest
        latest.append(value)
        floor = floors.get(trend.name)
        if floor is not None and value < floor:
            failures.append(
                f"{trend.name}: latest speedup {value:.2f}x below"
                f" target floor {floor:.2f}x"
            )
        if factor is not None and len(trend.points) >= 2:
            prev_pr, prev = trend.points[-2]
            required = prev * factor
            if value < required:
                failures.append(
                    f"{trend.name}: latest speedup {value:.2f}x <"
                    f" {required:.2f}x ({prev:.2f}x at PR{prev_pr}"
                    f" * regression factor {factor})"
                )
    geomean_min = targets.get("geomean_min")
    if geomean_min is not None and latest:
        geomean = math.exp(
            sum(math.log(value) for value in latest) / len(latest)
        )
        if geomean < geomean_min:
            failures.append(
                f"geomean of latest speedups {geomean:.2f}x below"
                f" target {geomean_min:.2f}x"
            )
    return failures


def format_history(history: PerfHistory) -> str:
    """Render the trajectory as a text table plus a regressions-first
    summary."""
    columns = ["bench"] + [f"PR{n}" for n in history.pr_numbers] + ["delta"]
    rows = [columns]
    # Regressions first in the table too, then the rest in name order.
    ordered = sorted(
        history.trends, key=lambda t: (not t.regressed, t.name)
    )
    for trend in ordered:
        by_pr = dict(trend.points)
        delta = trend.delta
        if delta is None:
            delta_cell = "new"
        else:
            delta_cell = f"{delta:+.2f}x"
        rows.append(
            [trend.name]
            + [
                f"{by_pr[n]:.2f}x" if n in by_pr else "-"
                for n in history.pr_numbers
            ]
            + [delta_cell]
        )
    widths = [max(len(row[col]) for row in rows) for col in range(len(columns))]
    lines = []
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))

    lines.append("")
    if history.regressions:
        lines.append("regressions (vs previous baseline):")
        for trend in history.regressions:
            prev_pr, prev = trend.points[-2]
            last_pr, last = trend.points[-1]
            lines.append(
                f"  {trend.name}: {prev:.2f}x (PR{prev_pr})"
                f" -> {last:.2f}x (PR{last_pr})"
            )
    else:
        lines.append("regressions: none")
    lines.append("wins / steady:")
    for trend in history.wins:
        delta = trend.delta
        note = "new" if delta is None else f"{delta:+.2f}x"
        lines.append(f"  {trend.name}: {trend.latest:.2f}x ({note})")
    for note in history.skipped:
        lines.append(f"skipped: {note}")
    return "\n".join(lines)
