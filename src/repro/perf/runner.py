"""Perfbench runner: time microbenchmarks, write and gate reports.

The committed baseline (``results/bench/BENCH_PR10.json``) records both
the machine-specific wall-clock numbers from the machine that produced
it *and* machine-independent facts: the simulated-result digest per
bench and the fast/compat speedup ratio. ``--check`` re-runs the
benches and fails if

* the fast and compat lanes disagree on simulated results (byte-identity
  broken),
* a bench's digest differs from the committed one (the physics drifted),
* the measured speedup falls below ``min_speedup * tolerance`` (the
  fast lane regressed; tolerance is generous to absorb runner noise).
"""

from __future__ import annotations

import cProfile
import io
import json
import platform
import pstats
import time
from pathlib import Path
from typing import Callable

from ..errors import ConfigError
from .bench import MICROBENCHES, run_microbench

BENCH_BASELINE_PATH = Path("results/bench/BENCH_PR10.json")
SCHEMA = "repro.perfbench/v1"

# CI runners are noisy shared machines; require only this fraction of
# each bench's nominal speedup floor by default.
DEFAULT_TOLERANCE = 0.5


def run_perfbench(
    benches: list[str] | None = None,
    repeats: int = 3,
    scale: float = 1.0,
    lanes: tuple[str, ...] = ("compat", "fast"),
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Time each microbenchmark in each lane; return a report dict.

    Each (bench, lane) pair is run *repeats* times on a freshly built
    engine and the minimum wall time is kept — the standard defence
    against scheduler noise. Simulated digests must agree across every
    repetition and lane of a bench; disagreement is recorded (and later
    failed by :func:`check_report`), not raised, so a broken lane still
    produces a report to inspect.
    """
    if repeats <= 0:
        raise ConfigError("repeats must be positive")
    if scale <= 0:
        raise ConfigError("scale must be positive")
    names = benches if benches is not None else sorted(MICROBENCHES)
    results: dict[str, dict] = {}
    for name in names:
        spec = MICROBENCHES.get(name)
        if spec is None:
            raise ConfigError(
                f"unknown microbenchmark {name!r};"
                f" known: {', '.join(sorted(MICROBENCHES))}"
            )
        walls: dict[str, float] = {}
        digests: dict[str, str] = {}
        for lane in lanes:
            fast = lane == "fast"
            best = float("inf")
            lane_digest = None
            for rep in range(repeats):
                if progress:
                    progress(f"{name}/{lane} rep {rep + 1}/{repeats}")
                wall_s, digest = run_microbench(name, fast=fast, scale=scale)
                best = min(best, wall_s)
                if lane_digest is None:
                    lane_digest = digest
                elif lane_digest != digest:
                    lane_digest = "nondeterministic"
            walls[lane] = best
            digests[lane] = lane_digest or "missing"
        unique = set(digests.values())
        equivalent = len(unique) == 1 and "nondeterministic" not in unique
        entry = {
            "description": spec.description,
            "min_speedup": spec.min_speedup,
            "sim_digest": digests[lanes[0]],
            "lanes_equivalent": equivalent,
        }
        for lane in lanes:
            entry[f"{lane}_wall_s"] = round(walls[lane], 6)
        if "compat" in walls and "fast" in walls and walls["fast"] > 0:
            entry["speedup"] = round(walls["compat"] / walls["fast"], 3)
        results[name] = entry
    return {
        "schema": SCHEMA,
        "scale": scale,
        "repeats": repeats,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "recorded": time.strftime("%Y-%m-%d"),
        "benches": results,
    }


def profile_perfbench(
    benches: list[str] | None = None,
    scale: float = 1.0,
    out_dir: Path | str = Path("results/bench"),
    top: int = 30,
    progress: Callable[[str], None] | None = None,
) -> list[Path]:
    """Profile each bench's fast lane under cProfile.

    Writes ``profile-<bench>.txt`` per bench into *out_dir* — the top
    *top* functions by cumulative and by total time — and returns the
    written paths. Profiling answers the question the timing table
    can't: *where* the fast lane spends its remaining wall clock, which
    is what the next optimisation PR wants committed alongside the
    numbers it is trying to beat.
    """
    if scale <= 0:
        raise ConfigError("scale must be positive")
    if top <= 0:
        raise ConfigError("top must be positive")
    names = benches if benches is not None else sorted(MICROBENCHES)
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    for name in names:
        if name not in MICROBENCHES:
            raise ConfigError(
                f"unknown microbenchmark {name!r};"
                f" known: {', '.join(sorted(MICROBENCHES))}"
            )
        if progress:
            progress(f"profiling {name}/fast")
        profiler = cProfile.Profile()
        profiler.enable()
        wall_s, digest = run_microbench(name, fast=True, scale=scale)
        profiler.disable()
        buf = io.StringIO()
        buf.write(f"# cProfile of {name} (fast lane, scale={scale})\n")
        buf.write(f"# wall {wall_s:.6f}s  sim_digest {digest}\n\n")
        stats = pstats.Stats(profiler, stream=buf)
        stats.strip_dirs()
        for sort in ("cumulative", "tottime"):
            buf.write(f"## top {top} by {sort}\n")
            stats.sort_stats(sort).print_stats(top)
            buf.write("\n")
        path = out / f"profile-{name}.txt"
        path.write_text(buf.getvalue())
        paths.append(path)
    return paths


def write_report(report: dict, path: Path | str) -> Path:
    """Write *report* as pretty JSON, creating parent directories."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return out


def load_baseline(path: Path | str = BENCH_BASELINE_PATH) -> dict:
    """Load a committed perfbench baseline."""
    baseline_path = Path(path)
    if not baseline_path.exists():
        raise ConfigError(
            f"perfbench baseline not found at {baseline_path};"
            " run `repro perfbench --out` to record one"
        )
    data = json.loads(baseline_path.read_text())
    if data.get("schema") != SCHEMA:
        raise ConfigError(
            f"baseline {baseline_path} has schema"
            f" {data.get('schema')!r}, expected {SCHEMA!r}"
        )
    return data


def check_report(report: dict, baseline: dict | None = None,
                 tolerance: float = DEFAULT_TOLERANCE) -> list[str]:
    """Gate *report* against its invariants; return failure messages.

    An empty list means the gate passed. Digest comparison against the
    baseline only applies when the scales match (digests are workload
    content hashes, so they are machine-independent but scale-specific).
    """
    if not 0 < tolerance <= 1:
        raise ConfigError("tolerance must be in (0, 1]")
    failures: list[str] = []
    base_benches = {}
    if baseline is not None and baseline.get("scale") == report.get("scale"):
        base_benches = baseline.get("benches", {})
    for name, entry in report.get("benches", {}).items():
        if not entry.get("lanes_equivalent", False):
            failures.append(
                f"{name}: fast and compat lanes produced different"
                " simulated results (byte-identity broken)"
            )
        base = base_benches.get(name)
        if base and base.get("sim_digest") != entry.get("sim_digest"):
            failures.append(
                f"{name}: simulated digest {entry.get('sim_digest')}"
                f" != committed baseline {base.get('sim_digest')}"
                " (simulated outputs changed)"
            )
        speedup = entry.get("speedup")
        floor = entry.get("min_speedup", 1.0) * tolerance
        if speedup is not None and speedup < floor:
            failures.append(
                f"{name}: speedup {speedup:.2f}x below floor"
                f" {floor:.2f}x (min {entry.get('min_speedup')}x"
                f" * tolerance {tolerance})"
            )
    return failures
