#!/usr/bin/env python3
"""Near-data processing on the CXL controller (Sec 4, Fig 3).

Two demonstrations:

1. **Operator offload** — a selective scan over a 400 MB table, run
   on the host (pull everything over the fabric) vs on the expander's
   controller (scan at internal DRAM speed, ship only matches), vs
   both in parallel — which only coherence makes possible.
2. **Active memory regions** — a materialized view that is never
   materialized: reading its address range streams the computation's
   output directly.

Run:  python examples/ndp_views.py
"""

from repro import config
from repro.core.ndp import ActiveMemoryRegion, NDPController
from repro.sim.interconnect import AccessPath, Link
from repro.sim.memory import MemoryDevice
from repro.units import KIB, MIB, fmt_ns

PAGES = 100_000  # ~400 MB


def main() -> None:
    device = MemoryDevice(config.cxl_expander_ddr5())
    path = AccessPath(device=device, links=(Link(config.cxl_port()),))
    controller = NDPController(path)

    print("Selective scan of a ~400 MB table living in CXL memory:\n")
    print(f"{'selectivity':>12} {'host':>12} {'offload':>12}"
          f" {'parallel':>12} {'fabric bytes saved':>20}")
    for selectivity in (0.001, 0.01, 0.1, 1.0):
        host = controller.host_filter_time(PAGES, selectivity)
        ndp = controller.offload_filter_time(PAGES, selectivity)
        best = controller.best_host_fraction(PAGES, selectivity)
        par = controller.parallel_filter_time(PAGES, selectivity, best)
        saved = 1.0 - ndp.fabric_bytes / host.fabric_bytes
        print(f"{selectivity:>11.1%} {fmt_ns(host.time_ns):>12}"
              f" {fmt_ns(ndp.time_ns):>12} {fmt_ns(par.time_ns):>12}"
              f" {saved:>19.0%}")

    print("\nActive memory region: a 256 MB computed view"
          " (4:1 source expansion).")
    region = ActiveMemoryRegion(path, view_bytes=256 * MIB,
                                expansion=4.0)
    print(f"  read full view   streaming {fmt_ns(region.streaming_read_time()):>10}"
          f"   materialized {fmt_ns(region.materialized_read_time()):>10}")
    print(f"  read first 64KiB streaming"
          f" {fmt_ns(region.streaming_read_time(64 * KIB)):>10}"
          f"   materialized"
          f" {fmt_ns(region.materialized_read_time(64 * KIB)):>10}")
    print("\nThe streaming region feeds results as the reader touches"
          " addresses - results 'need not be\nmaterialized' (Sec 4),"
          " which is dramatic for partial reads.")


if __name__ == "__main__":
    main()
