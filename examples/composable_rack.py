#!/usr/bin/env python3
"""Composable heterogeneous racks (Sec 5).

The same CXL fabric that pools memory pools accelerators: GPUs,
FPGAs, and DPUs become rack-level resources any engine can borrow.
This script schedules a mixed DB + ML operator stream two ways:

* fixed servers — each machine owns whatever devices it shipped with,
  and tasks can only use their server's hardware;
* a composable pool — every task runs on the best-suited free device
  anywhere in the rack.

Run:  python examples/composable_rack.py
"""

from repro.core.hetero import (
    ComposableRack,
    FixedServerRack,
    mixed_workload,
)
from repro.units import fmt_ns

TASKS = 400


def describe(name, report):
    busy = report.per_class_busy
    total = sum(busy.values()) or 1.0
    mix = ", ".join(
        f"{klass} {share / total:.0%}"
        for klass, share in sorted(busy.items())
    )
    print(f"  {name:<18} mean completion"
          f" {fmt_ns(report.mean_completion_ns):>10}   makespan"
          f" {fmt_ns(report.makespan_ns):>10}")
    print(f"  {'':<18} busy-time mix: {mix}")


def main() -> None:
    print(f"{TASKS} mixed operators (scans, joins, ML inference,"
          " compression):\n")
    fixed = FixedServerRack(num_servers=8, gpus_every=2,
                            fpgas_every=2).schedule(
        mixed_workload(num_tasks=TASKS))
    pooled = ComposableRack(gpus=4, fpgas=4, dpus=4,
                            cpus=8).schedule(
        mixed_workload(num_tasks=TASKS))
    describe("fixed servers", fixed)
    print()
    describe("composable pool", pooled)
    advantage = fixed.mean_completion_ns / pooled.mean_completion_ns
    print(f"\nPooling the accelerators behind the fabric finishes"
          f" tasks {advantage:.1f}x faster on average:\nML operators"
          " land on GPUs and compression on FPGAs wherever they are"
          " free, instead of queueing\nfor whatever their server"
          " happens to own (Sec 5).")


if __name__ == "__main__":
    main()
