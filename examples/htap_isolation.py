#!/usr/bin/env python3
"""HTAP without interference: OLTP on DRAM, OLAP on CXL (Sec 3.1).

The paper's "interesting configuration": place the transactional
working set in local DRAM and the analytical data structures in CXL
memory, so the two workloads stop fighting over the buffer pool.

This script runs a mixed HTAP workload against:
* a unified pool with OS-style replacement (scans evict OLTP pages);
* a statically partitioned pool (OLTP pages can never be evicted by
  the scan flood).

Run:  python examples/htap_isolation.py
"""

from repro.core import OSPagingPolicy, ScaleUpEngine, StaticPolicy
from repro.workloads import mixed_htap_trace

OLTP_PAGES = 1_000
OLAP_PAGES = 6_000


def build(placement):
    return ScaleUpEngine.build(
        dram_pages=1_200,
        cxl_pages=OLAP_PAGES + OLTP_PAGES + 64,
        placement=placement,
        with_storage=False,
    )


def run(name, engine):
    trace = mixed_htap_trace(
        oltp_pages=OLTP_PAGES, olap_pages=OLAP_PAGES,
        oltp_ops=25_000, olap_repeats=2, oltp_per_olap=4, seed=17,
    )
    report = engine.run(trace, label=name)
    oltp_in_dram = sum(
        1 for page in engine.pool.resident_in(0) if page < OLTP_PAGES
    )
    print(f"  {name:<22} runtime {report.total_ns / 1e6:7.2f} ms   "
          f"OLTP pages still in DRAM: {oltp_in_dram:4d}/{OLTP_PAGES}")
    return oltp_in_dram


def main() -> None:
    print("Interleaved OLTP (Zipfian updates) + OLAP (repeated table"
          " scans):\n")
    shared = run("unified pool", build(OSPagingPolicy(
        check_interval=10**9)))
    isolated = run("OLTP|OLAP split", build(StaticPolicy(
        lambda page: 0 if page < OLTP_PAGES else 1)))

    print(f"\nThe scan flood displaced "
          f"{OLTP_PAGES - shared} OLTP pages from DRAM in the unified"
          f" pool;\nstatic CXL placement displaced"
          f" {OLTP_PAGES - isolated}. The OLTP and OLAP data"
          " structures no longer interfere (Sec 3.1).")


if __name__ == "__main__":
    main()
