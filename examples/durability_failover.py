#!/usr/bin/env python3
"""Durability and failover on the new memory hierarchy (Sec 4 + 2.6).

Three mechanisms, one script:

1. commit latency by log placement (NVMe vs replicated DRAM vs
   CXL-NVM vs battery DRAM);
2. a crash: committed transactions survive, losers roll back
   (ARIES-lite over the placed log);
3. end-to-end failover downtime: RAS + warm attach + CXL-NVM replay
   vs timeouts + cold NVMe restart.

Run:  python examples/durability_failover.py
"""

from repro.core.failover import FailoverOrchestrator
from repro.core.recovery import RecoveryManager
from repro.core.wal import (
    BatteryDRAMLogBackend,
    CXLNVMLogBackend,
    NVMeLogBackend,
    RDMAReplicatedLogBackend,
    WriteAheadLog,
)
from repro.storage.disk import StorageDevice
from repro.units import fmt_ns


def commit_latencies() -> None:
    print("1. Commit latency by log placement (group commit of 8):\n")
    for backend in (NVMeLogBackend(StorageDevice()),
                    RDMAReplicatedLogBackend.build(replicas=2),
                    CXLNVMLogBackend.build(),
                    BatteryDRAMLogBackend.build()):
        log = WriteAheadLog(backend, group_size=8)
        for i in range(4_000):
            log.append(256, now_ns=i * 500.0)
        log.flush(4_000 * 500.0)
        print(f"   {backend.name:<16} mean commit"
              f" {fmt_ns(log.commit_latency.mean):>10}")


def crash_story() -> None:
    print("\n2. Crash recovery over a CXL-NVM log:")
    rm = RecoveryManager(WriteAheadLog(CXLNVMLogBackend.build(),
                                       group_size=4))
    rm.begin(1)
    rm.update(1, page_id=0, key="balance", value=100)
    rm.commit(1)
    rm.begin(2)
    rm.update(2, page_id=0, key="balance", value=999)  # in flight
    print("   committed txn 1 set balance=100;"
          " txn 2 wrote 999 but never committed")
    rm.crash()
    report = rm.recover()
    print(f"   crash! recovery redid {report.redo_applied} and undid"
          f" {report.undo_applied} records in {fmt_ns(report.time_ns)}")
    print(f"   balance after recovery: {rm.read(0, 'balance')}"
          " (exactly the committed state)")


def failover_story() -> None:
    print("\n3. Failover downtime (2 GiB working set, 64 MiB log tail):")
    pooled, classic, ratio = FailoverOrchestrator().compare()
    for outcome in (classic, pooled):
        print(f"   {outcome.name:<12} detect"
              f" {fmt_ns(outcome.detection_ns):>10}  recover state"
              f" {fmt_ns(outcome.state_recovery_ns):>10}  replay"
              f" {fmt_ns(outcome.log_replay_ns):>10}  TOTAL"
              f" {fmt_ns(outcome.total_downtime_ns):>10}")
    print(f"   -> {ratio:.0f}x less downtime when state and log live"
          " on the CXL fabric.")


def main() -> None:
    commit_latencies()
    crash_story()
    failover_story()


if __name__ == "__main__":
    main()
