#!/usr/bin/env python3
"""The return of scale-up: one rack, one database engine (Sec 3.3).

Compares two ways to use four machines for TPC-C-like transactions:

* **scale-out** — data sharded by warehouse, RDMA between nodes,
  two-phase commit for any cross-shard transaction;
* **scale-up** — every host's threads share one GFAM buffer pool and
  one lock table through the CXL fabric; there is no such thing as a
  distributed transaction.

The sweep over the cross-warehouse transaction fraction shows the
crossover the paper predicts.

Run:  python examples/rack_scale_engine.py
"""

from repro.core.scaleout import ScaleOutConfig, ScaleOutEngine
from repro.core.shared import SharedEngineConfig, SharedRackEngine
from repro.workloads.tpcc import TPCCLite

NODES = 4
TXNS = 2_000


def main() -> None:
    print(f"{NODES} machines, {TXNS} TPC-C-lite transactions per"
          " point.\n")
    print(f"{'cross-WH txns':>14} {'scale-out tps':>15}"
          f" {'scale-up tps':>14} {'winner':>10}")
    for remote in (0.0, 0.01, 0.05, 0.10, 0.15, 0.25, 0.40):
        txns = list(TPCCLite(
            num_warehouses=16, remote_probability=remote, seed=3,
        ).transactions(TXNS))
        out = ScaleOutEngine(ScaleOutConfig(num_nodes=NODES)).run(txns)
        up = SharedRackEngine(
            SharedEngineConfig(num_hosts=NODES)).run(txns)
        winner = "scale-up" if up.throughput_tps > out.throughput_tps \
            else "scale-out"
        print(f"{remote:>13.0%} {out.throughput_tps:>15,.0f}"
              f" {up.throughput_tps:>14,.0f} {winner:>10}")

    print("\nSharding wins only while transactions stay inside their"
          " partition; the moment real workloads\ncross partitions,"
          " coherent shared memory over CXL wins - and it never needed"
          " a partitioning\nscheme, resharding, or 2PC in the first"
          " place (Sec 3.3).")


if __name__ == "__main__":
    main()
