#!/usr/bin/env python3
"""Serverless-grade elasticity from pooled CXL memory (Sec 3.2).

The buffer pool lives in a rack-level memory pool behind a CXL
switch. Query engines come and go:

* engine A runs a workload, warming the pooled buffer;
* engine A is torn down (scale-to-zero); the warm state stays in the
  pool;
* engine B spawns on another host, adopts the slice, and serves at
  full speed instantly — "no need to warm up the database";
* migrating an engine is a remap, not a state copy.

Run:  python examples/elastic_cloud.py
"""

from repro.core.elastic import ElasticCluster
from repro.units import GIB, fmt_ns
from repro.workloads import YCSBConfig, ycsb_trace

DATASET_PAGES = 3_000


def trace(seed=21):
    return ycsb_trace(YCSBConfig(
        mix="B", num_pages=DATASET_PAGES, num_ops=15_000,
        theta=0.9, think_ns=50.0, seed=seed,
    ))


def main() -> None:
    cluster = ElasticCluster(dataset_pages=DATASET_PAGES)

    print("1. Spawn engine A against a cold pool slice...")
    engine_a, spawn_a = cluster.spawn_engine(
        "engine-a", local_pages=256, slice_pages=DATASET_PAGES + 64)
    report_a = engine_a.run(trace(), label="A-cold")
    print(f"   spawn {fmt_ns(spawn_a)}, cold run"
          f" {fmt_ns(report_a.total_ns)}"
          f" ({report_a.misses:,} storage faults)")

    print("2. Tear engine A down; its buffer state stays pooled.")
    slice_ = cluster.detach_engine(engine_a)
    print(f"   {len(slice_.resident_pages):,} pages remain warm in"
          " the pool slice")

    print("3. Spawn engine B on another host from the warm slice...")
    engine_b, spawn_b = cluster.spawn_engine(
        "engine-b", local_pages=256, warm_from=slice_)
    report_b = engine_b.run(trace(), label="B-warm")
    print(f"   spawn {fmt_ns(spawn_b)}, warm run"
          f" {fmt_ns(report_b.total_ns)}"
          f" ({report_b.misses:,} storage faults)")

    speedup = report_a.total_ns / report_b.total_ns
    print(f"\n   Warm spawn served the same workload {speedup:.1f}x"
          " faster - no warm-up phase.")

    print("\n4. Migration cost for an 8 GiB engine:")
    pooled = cluster.migration_time_ns(8 * GIB, pooled=True)
    copied = cluster.migration_time_ns(8 * GIB, pooled=False)
    print(f"   state in pool : {fmt_ns(pooled)} (remap)")
    print(f"   state copied  : {fmt_ns(copied)} (RDMA transfer)")
    print(f"   -> {copied / pooled:,.0f}x cheaper when the buffer pool"
          " is disaggregated (Sec 3.2).")


if __name__ == "__main__":
    main()
