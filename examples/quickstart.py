#!/usr/bin/env python3
"""Quickstart: a buffer pool larger than DRAM, thanks to CXL.

Builds three engines for a working set that exceeds local DRAM:

1. DRAM only, paging to NVMe (yesterday's answer);
2. DRAM + a CXL memory expander, OS-style paging placement;
3. DRAM + CXL with the engine's own cost-based placement (the paper's
   position: the database knows page utility better than the OS).

Run:  python examples/quickstart.py
      python examples/quickstart.py --trace-out quickstart.trace.json
      # then load the file in chrome://tracing (or ui.perfetto.dev)

With ``--trace-out``, every engine records its virtual-time spans
(runs, page faults, migrations) into one Chrome trace-event file —
see docs/observability.md.
"""

import argparse

from repro.core import DbCostPolicy, OSPagingPolicy, ScaleUpEngine
from repro.sim import set_ambient, sink_for_path
from repro.workloads import YCSBConfig, ycsb_trace

# A 4 GB working set against 1 GB of local DRAM (in 4 KiB pages).
TOTAL_PAGES = 10_000
DRAM_PAGES = 2_500


def run(name: str, engine: ScaleUpEngine) -> None:
    config = YCSBConfig(mix="B", num_pages=TOTAL_PAGES, num_ops=40_000,
                        theta=0.99, think_ns=100.0, seed=7)
    engine.warm_with(ycsb_trace(config))      # steady state
    report = engine.run(ycsb_trace(config), label=name)
    print(f"  {name:<22} {report.total_ns / 1e6:8.2f} ms   "
          f"mean access {report.mean_latency_ns:6.0f} ns   "
          f"DRAM hits {report.tier_hit_rates[0]:.0%}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace-out", metavar="PATH",
                        help="record a chrome://tracing file of the run")
    args = parser.parse_args()

    sink = sink_for_path(args.trace_out) if args.trace_out else None
    previous = set_ambient(trace=sink)

    print("Working set of", TOTAL_PAGES, "pages;", DRAM_PAGES,
          "fit in local DRAM.\n")

    try:
        run("NVMe paging", ScaleUpEngine.build(dram_pages=DRAM_PAGES))
        run("CXL + OS paging", ScaleUpEngine.build(
            dram_pages=DRAM_PAGES, cxl_pages=TOTAL_PAGES + 16,
            placement=OSPagingPolicy(),
        ))
        run("CXL + DB placement", ScaleUpEngine.build(
            dram_pages=DRAM_PAGES, cxl_pages=TOTAL_PAGES + 16,
            placement=DbCostPolicy(),
        ))
    finally:
        set_ambient(*previous)
        if sink is not None:
            sink.close()
            print(f"\n[trace written to {args.trace_out} —"
                  " open it in chrome://tracing]")

    print("\nCXL memory expansion absorbs the overflow at memory"
          " latency instead of storage latency (Fig 2a of the paper),"
          "\nand engine-driven placement keeps the hot set in DRAM.")


if __name__ == "__main__":
    main()
