#!/usr/bin/env python3
"""A B+tree that spans DRAM and CXL memory (Sec 3.1).

"Should data structures span conventional and CXL memory?" This
script builds the same 200k-key index three ways and measures point
lookups:

* all nodes in DRAM (fast, but the index competes for scarce DRAM);
* all nodes in CXL (DRAM-free, but every hop pays fabric latency);
* hybrid: inner levels in DRAM, leaves in CXL — a handful of DRAM
  pages buys back most of the latency.

Run:  python examples/tiered_index.py
"""

from repro import config
from repro.core.btree import TieredBTree
from repro.core.buffer import Tier, TieredBufferPool
from repro.core.placement import StaticPolicy
from repro.sim.interconnect import AccessPath, Link
from repro.sim.memory import MemoryDevice

KEYS = 200_000
PROBES = 2_000


def make_pool(classifier):
    tiers = [
        Tier("dram", AccessPath(device=MemoryDevice(config.local_ddr5())),
             8_192),
        Tier("cxl", AccessPath(
            device=MemoryDevice(config.cxl_expander_ddr5()),
            links=(Link(config.cxl_port()),)), 8_192),
    ]
    return TieredBufferPool(tiers=tiers,
                            placement=StaticPolicy(classifier))


def measure(name, classifier_factory):
    items = [(key, key) for key in range(KEYS)]
    shape = TieredBTree.bulk_build(make_pool(lambda _p: 1), items,
                                   first_page_id=0)
    pool = make_pool(classifier_factory(shape))
    tree = TieredBTree.bulk_build(pool, items, first_page_id=0)
    for key in range(0, KEYS, 61):
        tree.lookup(key)  # warm every page
    start = pool.clock.now
    for key in range(0, KEYS, KEYS // PROBES):
        tree.lookup(key)
    mean = (pool.clock.now - start) / PROBES
    print(f"  {name:<22} mean lookup {mean:5.0f} ns   "
          f"DRAM pages {pool.tier_residents(0):5,}   "
          f"height {tree.height}")


def main() -> None:
    print(f"{KEYS:,}-key B+tree, {PROBES:,} warm point lookups:\n")
    measure("all-DRAM", lambda _t: (lambda _p: 0))
    measure("hybrid (inner DRAM)", lambda t: t.page_classifier(0, 1))
    measure("all-CXL", lambda _t: (lambda _p: 1))
    print("\nThe hybrid keeps only the inner levels (a few dozen"
          " pages) in DRAM and still recovers most\nof the all-DRAM"
          " latency: data structures should span tiers (Sec 3.1).")


if __name__ == "__main__":
    main()
