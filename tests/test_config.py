"""Calibration presets: the numbers the paper quotes must hold."""

import pytest

from repro import config
from repro.errors import ConfigError


class TestLatencyAnchors:
    def test_cxl_load_is_1_35x_numa(self):
        # Intel MICRO'23 (paper ref [52]): CXL load ~= +35% vs NUMA.
        ratio = config.CXL_DRAM_LOAD_NS / config.REMOTE_NUMA_LOAD_NS
        assert ratio == pytest.approx(1.35)

    def test_local_below_numa_below_cxl(self):
        assert (config.LOCAL_DRAM_LOAD_NS
                < config.REMOTE_NUMA_LOAD_NS
                < config.CXL_DRAM_LOAD_NS)

    def test_cxl_in_pond_envelope_with_switch(self):
        # Pond (paper ref [31]): pool access in the 200-400 ns range.
        switched = config.CXL_DRAM_LOAD_NS + config.CXL_SWITCH_LATENCY_NS
        assert 200.0 <= switched <= 400.0

    def test_rdma_floor_is_microseconds(self):
        assert config.RDMA_BASE_LATENCY_NS >= 1_000.0


class TestEfficiencies:
    def test_intel_bandwidth_efficiencies(self):
        # Paper Sec 2.4: 70% NUMA vs 46% CXL load efficiency.
        assert config.NUMA_LOAD_EFFICIENCY == pytest.approx(0.70)
        assert config.CXL_LOAD_EFFICIENCY == pytest.approx(0.46)

    def test_expander_effective_bandwidth_near_meta(self):
        # Meta TPP (paper ref [34]): ~64 GB/s from one expander.
        spec = config.cxl_expander_ddr5()
        assert 55.0 <= spec.effective_load_bandwidth <= 75.0

    def test_nic_wastes_over_20_percent_of_pcie(self):
        # Paper Sec 2.5 / ref [37].
        nic = config.rdma_nic_400g()
        assert nic.protocol_efficiency < 0.80
        assert nic.effective_bandwidth == pytest.approx(50.0, rel=0.01)

    def test_cxl_port_uses_full_slot(self):
        port = config.cxl_port()
        assert port.protocol_efficiency == 1.0


class TestPCIe:
    def test_gen7_x16_is_242_gbps(self):
        # Paper Sec 6: PCIe Gen7 x16 = 242 GB/s.
        bw = config.pcie_bandwidth(config.PCIeGeneration.GEN7, 16)
        assert bw == pytest.approx(242.0, rel=0.01)

    def test_gen5_x16_is_63_gbps(self):
        bw = config.pcie_bandwidth(config.PCIeGeneration.GEN5, 16)
        assert bw == pytest.approx(63.0, rel=0.01)

    def test_each_generation_doubles(self):
        gens = list(config.PCIeGeneration)
        for a, b in zip(gens, gens[1:]):
            ratio = (config.PCIE_LANE_BANDWIDTH[b]
                     / config.PCIE_LANE_BANDWIDTH[a])
            assert 1.8 <= ratio <= 2.2

    def test_invalid_lane_count(self):
        with pytest.raises(ConfigError):
            config.pcie_bandwidth(config.PCIeGeneration.GEN5, 3)


class TestSpecValidation:
    def test_memory_spec_rejects_zero_capacity(self):
        with pytest.raises(ConfigError):
            config.MemorySpec(
                name="bad", kind=config.MemoryKind.LOCAL_DRAM,
                capacity_bytes=0, load_latency_ns=80,
                store_latency_ns=80, peak_bandwidth=1.0,
            )

    def test_memory_spec_rejects_bad_efficiency(self):
        with pytest.raises(ConfigError):
            config.MemorySpec(
                name="bad", kind=config.MemoryKind.LOCAL_DRAM,
                capacity_bytes=1024, load_latency_ns=80,
                store_latency_ns=80, peak_bandwidth=1.0,
                load_efficiency=1.5,
            )

    def test_link_spec_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            config.LinkSpec(name="bad", latency_ns=-1.0, raw_bandwidth=1.0)

    def test_with_capacity_copies(self):
        spec = config.local_ddr5()
        bigger = spec.with_capacity(spec.capacity_bytes * 2)
        assert bigger.capacity_bytes == 2 * spec.capacity_bytes
        assert bigger.load_latency_ns == spec.load_latency_ns

    def test_host_spec_rejects_zero_cores(self):
        with pytest.raises(ConfigError):
            config.HostSpec(name="h", cores=0)


class TestPresetShapes:
    def test_hbm_expander_has_more_bandwidth_than_ddr(self):
        hbm = config.cxl_expander_hbm()
        ddr = config.cxl_expander_ddr5()
        assert hbm.peak_bandwidth > ddr.peak_bandwidth

    def test_recycled_ddr4_is_slower_but_bigger(self):
        ddr4 = config.cxl_expander_ddr4_recycled()
        ddr5 = config.cxl_expander_ddr5()
        assert ddr4.load_latency_ns > ddr5.load_latency_ns
        assert ddr4.capacity_bytes > ddr5.capacity_bytes

    def test_nvm_stores_slower_than_loads(self):
        nvm = config.cxl_expander_nvm()
        assert nvm.store_latency_ns > nvm.load_latency_ns

    def test_storage_hierarchy_ordering(self):
        nvme, sata, hdd = (config.nvme_ssd(), config.sata_ssd(),
                           config.hdd())
        assert (nvme.read_latency_ns < sata.read_latency_ns
                < hdd.read_latency_ns)
        assert (nvme.read_bandwidth > sata.read_bandwidth
                > hdd.read_bandwidth)
