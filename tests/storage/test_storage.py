"""Pages, block devices, and page files."""

import pytest

from repro import config
from repro.errors import DeviceFailure, StorageError
from repro.storage.disk import StorageDevice
from repro.storage.file import PageFile
from repro.storage.page import INVALID_PAGE_ID, Page
from repro.units import PAGE_SIZE, us


class TestPage:
    def test_defaults(self):
        page = Page(page_id=7)
        assert page.page_id == 7
        assert page.size_bytes == PAGE_SIZE
        assert page.version == 0
        assert page.records == []

    def test_version_bumps(self):
        page = Page(page_id=0)
        assert page.bump_version() == 1
        page.add_record(("a",))
        assert page.version == 2
        assert page.records == [("a",)]

    def test_invalid_sentinel(self):
        assert INVALID_PAGE_ID == -1


class TestStorageDevice:
    def test_nvme_4k_read_latency(self):
        device = StorageDevice(config.nvme_ssd())
        t = device.read_time(PAGE_SIZE)
        assert t == pytest.approx(us(10) + PAGE_SIZE / 7.0, rel=0.01)

    def test_writes_slower_than_reads(self):
        device = StorageDevice()
        assert device.write_time(PAGE_SIZE) > device.read_time(PAGE_SIZE)

    def test_hdd_much_slower(self):
        nvme = StorageDevice(config.nvme_ssd())
        hdd = StorageDevice(config.hdd())
        assert hdd.read_time(PAGE_SIZE) > 100 * nvme.read_time(PAGE_SIZE)

    def test_stats(self):
        device = StorageDevice()
        device.read_time(PAGE_SIZE)
        device.write_time(PAGE_SIZE)
        assert device.stats.ios == 2
        assert device.stats.read_bytes == PAGE_SIZE

    def test_contended_io_queues(self):
        device = StorageDevice()
        t1 = device.read_completion(1024 * 1024, 0.0)
        t2 = device.read_completion(1024 * 1024, 0.0)
        assert t2 > t1

    def test_failure(self):
        device = StorageDevice()
        device.fail()
        with pytest.raises(DeviceFailure):
            device.read_time(PAGE_SIZE)

    def test_invalid_size(self):
        with pytest.raises(StorageError):
            StorageDevice().read_time(0)


class TestPageFile:
    def test_allocate_sequential_ids(self):
        pf = PageFile(StorageDevice())
        pages = pf.allocate_pages(3)
        assert [p.page_id for p in pages] == [0, 1, 2]
        assert pf.page_count == 3
        assert pf.size_bytes == 3 * PAGE_SIZE

    def test_read_returns_page_and_time(self):
        pf = PageFile(StorageDevice())
        pf.allocate_pages(1)
        page, t = pf.read_page(0)
        assert page.page_id == 0
        assert t > 0

    def test_read_missing_raises(self):
        pf = PageFile(StorageDevice())
        with pytest.raises(StorageError):
            pf.read_page(0)

    def test_write_roundtrip(self):
        pf = PageFile(StorageDevice())
        page = pf.allocate_page()
        page.add_record(("hello",))
        pf.write_page(page)
        again, _t = pf.read_page(page.page_id)
        assert again.records == [("hello",)]

    def test_peek_charges_no_io(self):
        pf = PageFile(StorageDevice())
        pf.allocate_pages(1)
        before = pf.device.stats.reads
        pf.peek(0)
        assert pf.device.stats.reads == before

    def test_contains(self):
        pf = PageFile(StorageDevice())
        pf.allocate_pages(2)
        assert pf.contains(1)
        assert not pf.contains(2)

    def test_negative_allocation_rejected(self):
        with pytest.raises(StorageError):
            PageFile(StorageDevice()).allocate_pages(-1)

    def test_page_ids_sorted(self):
        pf = PageFile(StorageDevice())
        pf.allocate_pages(5)
        assert pf.page_ids() == [0, 1, 2, 3, 4]
