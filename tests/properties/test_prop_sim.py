"""Property-based tests: coherence, address spaces, channels, clocks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import config
from repro.errors import AddressError
from repro.sim.address import AddressSpace
from repro.sim.bandwidth import SharedChannel
from repro.sim.coherence import CoherenceDirectory, LineState
from repro.sim.events import Simulator
from repro.sim.memory import MemoryDevice

coherence_ops = st.lists(
    st.tuples(
        st.sampled_from(["read", "write", "evict"]),
        st.integers(min_value=0, max_value=3),    # agent
        st.integers(min_value=0, max_value=7),    # line
    ),
    max_size=300,
)


@given(ops=coherence_ops)
@settings(max_examples=80, deadline=None)
def test_mesi_invariants_always_hold(ops):
    """The Sec 2.1 invariants survive any operation interleaving."""
    directory = CoherenceDirectory()
    agents = [directory.register_agent() for _ in range(4)]
    for op, agent_index, line in ops:
        agent = agents[agent_index]
        if op == "read":
            directory.read(agent, line)
        elif op == "write":
            directory.write(agent, line)
            # Write serialization: writer is the only holder.
            assert directory.holders_of(line) == {agent}
            assert directory.state_of(line) is LineState.MODIFIED
        else:
            directory.evict(agent, line)
        directory.check_invariants()


@given(ops=coherence_ops)
@settings(max_examples=50, deadline=None)
def test_message_counters_are_consistent(ops):
    directory = CoherenceDirectory()
    agents = [directory.register_agent() for _ in range(4)]
    for op, agent_index, line in ops:
        agent = agents[agent_index]
        if op == "read":
            messages = directory.read(agent, line)
        elif op == "write":
            messages = directory.write(agent, line)
        else:
            messages = directory.evict(agent, line)
        assert messages >= 0
    stats = directory.stats
    assert stats.read_misses <= stats.reads
    assert stats.write_misses <= stats.writes
    assert stats.messages >= stats.invalidations_sent


@given(sizes=st.lists(st.integers(min_value=1, max_value=1 << 20),
                      min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_allocator_never_loses_bytes(sizes):
    """allocate/free round trips conserve capacity exactly."""
    device = MemoryDevice(config.local_ddr5(capacity_bytes=1 << 26))
    offsets = []
    for size in sizes:
        try:
            offsets.append(device.allocate(size))
        except AddressError:
            break
    allocated = device.allocated_bytes
    assert allocated + device.free_bytes == device.capacity_bytes
    for offset in offsets:
        device.free(offset)
    assert device.allocated_bytes == 0
    assert device.free_bytes == device.capacity_bytes
    # After freeing everything the device must coalesce to one hole.
    device.allocate(device.capacity_bytes)


@given(sizes=st.lists(st.integers(min_value=1, max_value=1 << 16),
                      min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_address_space_resolution_is_partition(sizes):
    """Every mapped byte resolves to exactly the region covering it."""
    space = AddressSpace()
    for size in sizes:
        space.map_device(
            MemoryDevice(config.local_ddr5(capacity_bytes=size))
        )
    for region in space.regions():
        assert space.resolve(region.base) is region
        assert space.resolve(region.end - 1) is region


@given(requests=st.lists(
    st.tuples(st.integers(min_value=1, max_value=10_000),
              st.floats(min_value=0.0, max_value=1e6,
                        allow_nan=False)),
    min_size=1, max_size=100,
))
@settings(max_examples=50, deadline=None)
def test_channel_completions_monotone_in_arrival_order(requests):
    """A FIFO channel never completes a later request before an
    earlier one, and busy time equals work done."""
    channel = SharedChannel("prop", 2.0)
    requests = sorted(requests, key=lambda r: r[1])
    last_done = 0.0
    total_bytes = 0
    for size, now in requests:
        done = channel.request(size, now)
        assert done >= last_done
        assert done >= now
        last_done = done
        total_bytes += size
    assert channel.bytes_transferred == total_bytes
    assert channel.busy_time_ns == pytest.approx(total_bytes / 2.0)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False),
                       min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_simulator_dispatch_order_is_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.at(delay, lambda d=delay: fired.append(d))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
