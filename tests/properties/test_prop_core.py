"""Property-based tests: replacement policies and the buffer pool."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import config
from repro.core.buffer import Tier, TieredBufferPool
from repro.core.placement import DbCostPolicy, OSPagingPolicy, StaticPolicy
from repro.core.replacement import POLICIES, make_policy
from repro.sim.interconnect import AccessPath
from repro.sim.memory import MemoryDevice

# An operation stream over a small key universe.
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "access", "remove", "victim"]),
        st.integers(min_value=0, max_value=15),
    ),
    max_size=200,
)


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@given(ops=ops_strategy)
@settings(max_examples=60, deadline=None)
def test_policy_state_machine_invariants(policy_name, ops):
    """Under any operation stream: tracked set matches a reference
    set, victims are always tracked members, and length agrees."""
    policy = make_policy(policy_name)
    reference: set[int] = set()
    for op, key in ops:
        if op == "insert":
            if key in reference:
                continue
            policy.record_insert(key)
            reference.add(key)
        elif op == "access":
            if key not in reference:
                continue
            policy.record_access(key)
        elif op == "remove":
            policy.remove(key)
            reference.discard(key)
        else:  # victim
            victim = policy.victim()
            if reference:
                assert victim in reference
            else:
                assert victim is None
    assert len(policy) == len(reference)


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@given(
    pinned=st.sets(st.integers(min_value=0, max_value=9), max_size=10),
    population=st.sets(st.integers(min_value=0, max_value=9), min_size=1),
)
@settings(max_examples=40, deadline=None)
def test_victim_never_pinned(policy_name, pinned, population):
    policy = make_policy(policy_name)
    for key in sorted(population):
        policy.record_insert(key)
    victim = policy.victim(pinned=lambda k: k in pinned)
    unpinned = population - pinned
    if unpinned:
        assert victim in unpinned
    else:
        assert victim is None


def _make_pool(placement, dram, cxl):
    tiers = [
        Tier(name="dram",
             path=AccessPath(device=MemoryDevice(config.local_ddr5())),
             capacity_pages=dram),
        Tier(name="cxl",
             path=AccessPath(device=MemoryDevice(config.cxl_expander_ddr5())),
             capacity_pages=cxl),
    ]
    return TieredBufferPool(tiers=tiers, placement=placement)


pool_trace = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=63),   # page
        st.booleans(),                             # write
        st.booleans(),                             # is_scan
    ),
    max_size=300,
)


@pytest.mark.parametrize("placement_factory", [
    lambda: DbCostPolicy(rebalance_interval=37),
    lambda: OSPagingPolicy(check_interval=23, sample_rate=1.0),
    lambda: StaticPolicy(lambda p: p % 2),
], ids=["db-cost", "os-paging", "static"])
@given(trace=pool_trace,
       dram=st.integers(min_value=1, max_value=8),
       cxl=st.integers(min_value=1, max_value=16))
@settings(max_examples=40, deadline=None)
def test_pool_invariants_under_any_trace(placement_factory, trace,
                                         dram, cxl):
    """Capacities never exceeded, residency unique, counts consistent,
    clock monotone, demand latency always positive."""
    pool = _make_pool(placement_factory(), dram, cxl)
    last_clock = pool.clock.now
    for page, write, is_scan in trace:
        latency = pool.access(page, write=write, is_scan=is_scan)
        assert latency > 0
        assert pool.clock.now >= last_clock
        last_clock = pool.clock.now
        for tier_index, tier in enumerate(pool.tiers):
            residents = list(pool.resident_in(tier_index))
            assert len(residents) == pool.tier_residents(tier_index)
            assert len(residents) <= tier.capacity_pages
        all_pages = [
            p for i in range(len(pool.tiers))
            for p in pool.resident_in(i)
        ]
        assert len(all_pages) == len(set(all_pages)) == pool.resident_pages
    assert pool.stats.accesses == len(trace)
    assert pool.stats.misses <= pool.stats.accesses


@given(trace=pool_trace)
@settings(max_examples=30, deadline=None)
def test_pool_total_time_decomposes(trace):
    pool = _make_pool(DbCostPolicy(rebalance_interval=50), 4, 8)
    for page, write, is_scan in trace:
        pool.access(page, write=write, is_scan=is_scan)
    stats = pool.stats
    assert pool.clock.now == pytest.approx(
        stats.demand_time_ns + stats.migration_time_ns, rel=1e-9
    )
