"""Property tests: the vectorised contention scheduler.

Four families of invariants back the bulk-quantum machinery:

* lane identity — fast and compat lanes produce byte-identical
  session reports at every morsel quantum and escalation setting,
  under randomly generated contending session sets;
* escalation neutrality — the contention-aware bulk-quantum switch
  changes no final float (only quantum boundaries);
* array reservations — ``WaitQueue.reserve_run`` replays the
  ``occupy_run`` loop bit for bit on arbitrary (including unsorted)
  arrival orders, list or ndarray form;
* quantum consumption — ``ShapeSegments.next_span`` interleaved with
  ``next_run`` walks the identical access sequence, and
  ``TieredBufferPool.access_quantum`` matches per-run charging float
  for float, frame for frame.
"""

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ClientSession,
    ConcurrentEngine,
    ScaleUpEngine,
    StaticPolicy,
)
from repro.sim.bandwidth import WaitQueue
from repro.sim.context import SimContext
from repro.workloads import Access, scan_trace
from repro.workloads.traces import ShapeSegments, accesses_to_blocks


def contended_engine(pages: int, fast: bool = True) -> ScaleUpEngine:
    ctx = SimContext()
    engine = ScaleUpEngine.build(
        dram_pages=1, cxl_pages=pages,
        placement=StaticPolicy(lambda _p: 1),
        with_storage=False, ctx=ctx,
    )
    engine.warm_with(scan_trace(0, pages - 8, repeats=1, think_ns=0.0))
    engine.pool.set_fast_lane(fast)
    return engine


def pool_digest(engine):
    stats = engine.pool.stats
    return (
        repr(engine.pool.clock.now),
        repr(stats.demand_time_ns),
        stats.accesses, stats.misses,
        tuple(tier.hits for tier in stats.per_tier),
    )


def full_digest(report, engine):
    """Every SessionRunReport float incl. per-quantum samples."""
    parts = [repr(report.makespan_ns)]
    for name in sorted(report.sessions):
        s = report.sessions[name]
        parts.append((
            name, s.ops, repr(s.demand_ns), repr(s.think_ns),
            repr(s.wait_ns), repr(s.end_ns), s.misses, s.quanta,
            tuple(s.samples),
        ))
    return tuple(parts) + pool_digest(engine)


def final_digest(report, engine):
    """Final floats only — the schedule-shape-independent subset
    (samples and quantum counts legitimately vary with escalation)."""
    parts = [repr(report.makespan_ns)]
    for name in sorted(report.sessions):
        s = report.sessions[name]
        parts.append((
            name, s.ops, repr(s.demand_ns), repr(s.think_ns),
            repr(s.wait_ns), repr(s.end_ns), s.misses,
        ))
    return tuple(parts) + pool_digest(engine)


def random_sessions(rng: random.Random, pages: int) -> list[ClientSession]:
    """2-4 contending sessions: zipf-ish points with writes and mixed
    think times, plus block scans — the shapes that cut runs short."""
    sessions = []
    for i in range(rng.randint(2, 4)):
        ops = rng.randint(40, 120)
        if rng.random() < 0.5:
            trace = [
                Access(page_id=rng.randrange(pages - 8),
                       write=rng.random() < 0.25,
                       think_ns=float(rng.choice([0.0, 50.0, 200.0])))
                for _ in range(ops)
            ]
        else:
            start = rng.randrange((pages - 8) // 2)
            trace = [
                Access(page_id=start + j % ((pages - 8) // 2),
                       is_scan=True, nbytes=16_384)
                for j in range(ops)
            ]
        sessions.append(ClientSession(f"s{i}", trace))
    return sessions


class TestSchedulerLaneIdentity:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=6, deadline=None)
    def test_lanes_identical_across_morsel_and_escalation(self, seed):
        pages = 600

        def run(fast, morsel_ops, escalate):
            engine = contended_engine(pages, fast=fast)
            rng = random.Random(seed)
            report = engine.run_sessions(
                random_sessions(rng, pages),
                morsel_ops=morsel_ops, escalate=escalate)
            return full_digest(report, engine)

        for morsel_ops in (1, 7, 32, 10**9):
            for escalate in (False, True):
                assert (run(True, morsel_ops, escalate)
                        == run(False, morsel_ops, escalate)), (
                    f"lane divergence at morsel_ops={morsel_ops},"
                    f" escalate={escalate}")

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=6, deadline=None)
    def test_escalation_changes_no_final_float(self, seed):
        pages = 600

        def run(morsel_ops, escalate):
            engine = contended_engine(pages, fast=True)
            rng = random.Random(seed)
            report = engine.run_sessions(
                random_sessions(rng, pages),
                morsel_ops=morsel_ops, escalate=escalate)
            return final_digest(report, engine)

        for morsel_ops in (1, 7, 32, 10**9):
            assert run(morsel_ops, True) == run(morsel_ops, False)


class TestReserveRun:
    @given(
        entries=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e9,
                          allow_nan=False, allow_infinity=False),
                st.integers(min_value=1, max_value=50),
            ),
            min_size=1, max_size=24,
        ),
        nbytes=st.sampled_from([64, 4_096, 65_536]),
        write=st.booleans(),
        prior=st.floats(min_value=0.0, max_value=1e9,
                        allow_nan=False, allow_infinity=False),
        as_array=st.booleans(),
    )
    @settings(max_examples=300, deadline=None)
    def test_reserve_run_matches_occupy_loop(self, entries, nbytes,
                                             write, prior, as_array):
        """Arbitrary (unsorted) arrival orders: reserve_run must equal
        the sequential occupy_run chain bit for bit — free_at, busy
        time, bytes, and grants."""
        lasts = [t for t, _ in entries]
        counts = [c for _, c in entries]
        loop = WaitQueue("loop", 0.1, 0.05)
        bulk = WaitQueue("bulk", 0.1, 0.05)
        loop._free_at = bulk._free_at = prior
        for t, c in entries:
            loop.occupy_run(t, nbytes, c, write)
        if as_array:
            bulk.reserve_run(np.asarray(lasts, dtype=np.float64),
                             nbytes, np.asarray(counts, dtype=np.int64),
                             write)
        else:
            bulk.reserve_run(lasts, nbytes, counts, write)
        assert repr(loop._free_at) == repr(bulk._free_at)
        a, b = loop.snapshot(), bulk.snapshot()
        assert set(a) == set(b)
        for key in a:
            assert repr(float(a[key])) == repr(float(b[key])), key


def random_trace(rng: random.Random, n: int) -> list[Access]:
    return [
        Access(page_id=rng.randrange(500),
               write=rng.random() < 0.3,
               is_scan=rng.random() < 0.2,
               nbytes=rng.choice([64, 4_096]),
               think_ns=float(rng.choice([0.0, 100.0])))
        for _ in range(n)
    ]


def _flatten_runs(segments: ShapeSegments):
    out = []
    while True:
        run = segments.next_run(10**9)
        if run is None:
            return out
        ids, nbytes, write, is_scan, think_ns, _count = run
        for pid in (ids.tolist() if isinstance(ids, np.ndarray) else ids):
            out.append((int(pid), nbytes, bool(write), bool(is_scan),
                        float(think_ns)))


def _flatten_mixed(segments: ShapeSegments, rng: random.Random):
    out = []
    while True:
        budget = rng.randint(1, 24)
        if rng.random() < 0.5:
            span = segments.next_span(budget)
            if span is not None:
                ids, segs, _count = span
                for a, b, nbytes, write, is_scan, think_ns in segs:
                    for pid in ids[a:b].tolist():
                        out.append((int(pid), nbytes, bool(write),
                                    bool(is_scan), float(think_ns)))
                continue
        run = segments.next_run(budget)
        if run is None:
            if segments.next_span(budget) is None:
                return out
            continue
        ids, nbytes, write, is_scan, think_ns, _count = run
        for pid in (ids.tolist() if isinstance(ids, np.ndarray) else ids):
            out.append((int(pid), nbytes, bool(write), bool(is_scan),
                        float(think_ns)))


class TestQuantumConsumption:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_next_span_next_run_interleave_identical(self, seed):
        """Any interleaving of next_span and next_run walks the same
        elementwise access sequence as next_run alone."""
        rng = random.Random(seed)
        trace = random_trace(rng, rng.randint(1, 300))
        block_ops = rng.choice([8, 64, 10**9])
        reference = _flatten_runs(
            ShapeSegments(accesses_to_blocks(trace, block_ops=block_ops)))
        mixed = _flatten_mixed(
            ShapeSegments(accesses_to_blocks(trace, block_ops=block_ops)),
            random.Random(seed + 1))
        assert mixed == reference
        assert len(reference) == len(trace)

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_access_quantum_matches_per_run(self, seed):
        """One access_quantum call equals access_run per segment:
        same accumulator boundaries, same pool floats, same frames."""
        rng = random.Random(seed)
        pages = 400
        n = rng.randint(2, 200)
        ids = np.array([rng.randrange(pages - 8) for _ in range(n)],
                       dtype=np.int64)
        n_cuts = rng.randint(0, min(6, n - 1))
        cuts = sorted(rng.sample(range(1, n), n_cuts)) if n_cuts else []
        bounds = [0] + cuts + [n]
        segs = [
            (a, b, rng.choice([64, 4_096]), rng.random() < 0.3,
             rng.random() < 0.2, float(rng.choice([0.0, 100.0])))
            for a, b in zip(bounds, bounds[1:])
        ]

        quantum_engine = contended_engine(pages)
        per_run_engine = contended_engine(pages)
        pool_q = quantum_engine.pool
        pool_r = per_run_engine.pool
        assert pool_q.quantum_lane_ready()

        accum_q, demands_q = pool_q.access_quantum(ids, segs, 0.0)
        accum_r = 0.0
        demands_r = []
        for a, b, nbytes, write, is_scan, think_ns in segs:
            accum_r = pool_r.access_run(
                ids[a:b], nbytes=nbytes, write=write, is_scan=is_scan,
                think_ns=think_ns, accum=accum_r)
            demands_r.append(accum_r)
        assert repr(accum_q) == repr(accum_r)
        assert [repr(d) for d in demands_q] == [repr(d) for d in demands_r]
        assert pool_digest(quantum_engine) == pool_digest(per_run_engine)

        pool_q.sync_frame_stats()
        pool_r.sync_frame_stats()
        for pid in sorted(set(ids.tolist())):
            fq = pool_q._frames.get(pid)
            fr = pool_r._frames.get(pid)
            assert (fq.accesses, repr(fq.last_access_ns), fq.dirty) == (
                fr.accesses, repr(fr.last_access_ns), fr.dirty), pid
