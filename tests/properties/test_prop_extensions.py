"""Property tests for the extension modules: interleaving, WAL,
autoscaling, morsel scheduling, and the 2PL executor."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import config
from repro.core.autoscale import Autoscaler, QueryJob
from repro.core.morsel import Morsel, RackScheduler
from repro.core.txn import TwoPhaseLockingExecutor
from repro.core.wal import BatteryDRAMLogBackend, WriteAheadLog
from repro.sim.interconnect import AccessPath, Link
from repro.sim.interleave import InterleaveSet
from repro.sim.memory import MemoryDevice
from repro.workloads.tpcc import RecordOp, Transaction


def _paths(n):
    return [
        AccessPath(device=MemoryDevice(config.cxl_expander_ddr5(),
                                       name=f"m{i}"),
                   links=(Link(config.cxl_port()),))
        for i in range(n)
    ]


@given(members=st.integers(min_value=1, max_value=6),
       weights=st.lists(st.integers(min_value=1, max_value=5),
                        min_size=1, max_size=6),
       addrs=st.lists(st.integers(min_value=0, max_value=1 << 30),
                      min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_interleave_stripe_partitions_addresses(members, weights, addrs):
    """Every address maps to exactly one member, deterministically,
    and the weighted stripe honors the weights over a full cycle."""
    weights = (weights * members)[:members]
    paths = _paths(members)
    iset = InterleaveSet(paths=paths, granularity_bytes=256,
                         weights=weights)
    for addr in addrs:
        first = iset.path_for(addr)
        second = iset.path_for(addr)
        assert first is second
        assert first in paths
    # One full weighted cycle hits each member exactly weight times.
    total = sum(weights)
    cycle = [iset.path_for(i * 256) for i in range(total)]
    for path, weight in zip(paths, weights):
        assert cycle.count(path) == weight


@given(arrivals=st.lists(st.floats(min_value=0, max_value=1e6,
                                   allow_nan=False),
                         min_size=1, max_size=100),
       group=st.integers(min_value=1, max_value=16))
@settings(max_examples=50, deadline=None)
def test_wal_commits_never_precede_appends(arrivals, group):
    """Every commit completes at or after the latest append it covers,
    and all records eventually commit after a final flush."""
    log = WriteAheadLog(BatteryDRAMLogBackend.build(), group_size=group)
    arrivals = sorted(arrivals)
    last_done = 0.0
    for t in arrivals:
        done = log.append(64, t)
        if done is not None:
            assert done >= t
            assert done >= last_done
            last_done = done
    log.flush(arrivals[-1])
    assert log.commit_latency.count == len(arrivals)
    assert log.commit_latency.min >= 0.0
    assert log.pending == 0


@given(jobs=st.lists(
    st.tuples(st.floats(min_value=0, max_value=1e8, allow_nan=False),
              st.floats(min_value=1, max_value=1e6, allow_nan=False)),
    min_size=1, max_size=80),
    mode=st.sampled_from(["fixed", "warm", "cold"]))
@settings(max_examples=50, deadline=None)
def test_autoscaler_serves_every_job_with_nonnegative_wait(jobs, mode):
    scaler = Autoscaler(mode=mode, min_workers=1, max_workers=8)
    report = scaler.run([
        QueryJob(arrival_ns=a, service_ns=s) for a, s in jobs
    ])
    assert report.jobs == len(jobs)
    assert all(wait >= 0 for wait in report.waits_ns)
    assert report.engine_time_ns > 0
    assert report.peak_workers <= 8


@given(morsel_sizes=st.lists(
    st.lists(st.floats(min_value=1, max_value=1e6, allow_nan=False),
             min_size=1, max_size=40),
    min_size=1, max_size=4),
    hosts=st.integers(min_value=1, max_value=4),
    threads=st.integers(min_value=1, max_value=4))
@settings(max_examples=50, deadline=None)
def test_morsel_schedulers_conserve_work(morsel_sizes, hosts, threads):
    """Makespan x threads >= total work >= makespan (one thread's
    share), for both schedulers, and every query completes."""
    queries = [
        [Morsel(query_id=q, service_ns=s) for s in sizes]
        for q, sizes in enumerate(morsel_sizes)
    ]
    total_work = sum(s for sizes in morsel_sizes for s in sizes)
    scheduler = RackScheduler(hosts=hosts, threads_per_host=threads,
                              dequeue_cost_ns=0.0)
    for outcome in (
        scheduler.run_static([list(q) for q in queries]),
        scheduler.run_shared_queue([list(q) for q in queries]),
    ):
        n_threads = hosts * threads
        assert outcome.makespan_ns * n_threads >= total_work - 1e-6
        assert outcome.makespan_ns <= total_work + 1e-6
        assert set(outcome.query_completion_ns) == \
            set(range(len(queries)))
        assert max(outcome.query_completion_ns.values()) == \
            pytest.approx(outcome.makespan_ns)


@given(txn_keys=st.lists(
    st.lists(st.integers(min_value=0, max_value=5), min_size=1,
             max_size=4),
    min_size=1, max_size=30),
    threads=st.integers(min_value=1, max_value=8))
@settings(max_examples=50, deadline=None)
def test_2pl_executor_conflict_serialization(txn_keys, threads):
    """Write-conflicting transactions never overlap in time; the
    makespan is bounded by total work (no lost work)."""
    txns = []
    for i, keys in enumerate(txn_keys):
        txn = Transaction(i, "payment", 0)
        txn.ops = [RecordOp("t", 0, k, write=True) for k in keys]
        txns.append(txn)
    per_txn = 1_000.0
    executor = TwoPhaseLockingExecutor(
        cost_model=lambda _t: (per_txn, 0), threads=threads,
    )
    report = executor.execute(txns)
    total_work = per_txn * len(txns)
    assert report.busy_ns == pytest.approx(total_work)
    assert report.makespan_ns >= per_txn
    assert report.makespan_ns <= total_work + 1e-6
    assert report.transactions == len(txns)
