"""Property-based tests: query operators, locks, stats, Zipf."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import ScaleUpEngine
from repro.core.locks import LockMode, LockTable
from repro.metrics.stats import StreamingStats, percentile
from repro.query.hashjoin import HashJoin
from repro.query.operators import HashAggregate, TableScan, collect
from repro.query.schema import Column, ColumnType, Schema
from repro.query.sort import ExternalSort, SortMergeJoin
from repro.query.table import Table
from repro.storage.disk import StorageDevice
from repro.storage.file import PageFile
from repro.workloads.zipf import ZipfGenerator


def _engine_and_table(rows):
    pf = PageFile(StorageDevice())
    schema = Schema([Column("k"), Column("v", ColumnType.FLOAT)])
    table = Table("t", schema, pf)
    table.bulk_load(rows)
    engine = ScaleUpEngine.build(dram_pages=max(table.page_count, 1) + 4,
                                 backing=pf)
    return engine, table


rows_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=20),
              st.floats(min_value=-100, max_value=100,
                        allow_nan=False)),
    min_size=1, max_size=300,
)


@given(rows=rows_strategy)
@settings(max_examples=40, deadline=None)
def test_sort_is_a_permutation_and_sorted(rows):
    engine, table = _engine_and_table(rows)
    out, _ = collect(ExternalSort(TableScan(table), "k"), engine)
    assert sorted(out) == sorted(rows)
    keys = [r[0] for r in out]
    assert keys == sorted(keys)


@given(rows=rows_strategy)
@settings(max_examples=30, deadline=None)
def test_hash_join_equals_sort_merge_join(rows):
    """Both join algorithms compute the same multiset of results."""
    engine, table = _engine_and_table(rows)
    hj, _ = collect(
        HashJoin(TableScan(table), TableScan(table), "k", "k"), engine
    )
    smj, _ = collect(
        SortMergeJoin(TableScan(table), TableScan(table), "k", "k"),
        engine,
    )
    assert sorted(hj) == sorted(smj)


@given(rows=rows_strategy)
@settings(max_examples=30, deadline=None)
def test_join_equals_nested_loop_reference(rows):
    engine, table = _engine_and_table(rows)
    out, _ = collect(
        HashJoin(TableScan(table), TableScan(table), "k", "k"), engine
    )
    # Self-join: the right side's same-named columns are dropped
    # (USING-style), so each match contributes the left row only.
    reference = sorted(a for a in rows for b in rows if a[0] == b[0])
    assert sorted(out) == reference


@given(rows=rows_strategy)
@settings(max_examples=30, deadline=None)
def test_aggregate_matches_python_groupby(rows):
    engine, table = _engine_and_table(rows)
    agg = HashAggregate(TableScan(table), group_by=["k"],
                        aggs=[("n", "count", None), ("s", "sum", "v")])
    out, _ = collect(agg, engine)
    expected: dict[int, tuple[int, float]] = {}
    for k, v in rows:
        n, s = expected.get(k, (0, 0.0))
        expected[k] = (n + 1, s + v)
    assert len(out) == len(expected)
    for k, n, s in out:
        assert expected[k][0] == n
        assert expected[k][1] == pytest.approx(s)


lock_ops = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),      # txn
              st.integers(min_value=0, max_value=5),      # key
              st.booleans(),                               # exclusive
              st.booleans()),                              # release after
    max_size=200,
)


@given(ops=lock_ops)
@settings(max_examples=60, deadline=None)
def test_lock_table_never_grants_conflicting_locks(ops):
    table = LockTable()
    for txn, key, exclusive, release in ops:
        mode = LockMode.EXCLUSIVE if exclusive else LockMode.SHARED
        table.try_acquire(txn, key, mode)
        table.check_consistency()
        if release:
            table.release_all(txn)
            table.check_consistency()


@given(data=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                               allow_nan=False),
                     min_size=2, max_size=500))
@settings(max_examples=60, deadline=None)
def test_streaming_stats_match_numpy(data):
    stats = StreamingStats()
    for x in data:
        stats.add(x)
    assert stats.mean == pytest.approx(float(np.mean(data)), abs=1e-6,
                                       rel=1e-6)
    assert stats.variance == pytest.approx(float(np.var(data)), abs=1e-4,
                                           rel=1e-4)
    assert stats.min == min(data)
    assert stats.max == max(data)


@given(data=st.lists(st.floats(min_value=0, max_value=1e6,
                               allow_nan=False),
                     min_size=1, max_size=200),
       q=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_percentile_within_data_range(data, q):
    p = percentile(data, q)
    assert min(data) <= p <= max(data)


@given(n=st.integers(min_value=2, max_value=5_000),
       theta=st.floats(min_value=0.0, max_value=1.2))
@settings(max_examples=40, deadline=None)
def test_zipf_mass_is_monotone_in_fraction(n, theta):
    zipf = ZipfGenerator(n, theta=theta)
    masses = [zipf.hot_set_mass(f) for f in (0.1, 0.3, 0.6, 1.0)]
    assert all(a <= b + 1e-12 for a, b in zip(masses, masses[1:]))
    assert masses[-1] == pytest.approx(1.0)


@given(n=st.integers(min_value=10, max_value=1_000),
       theta=st.floats(min_value=0.5, max_value=1.2),
       count=st.integers(min_value=1, max_value=500))
@settings(max_examples=30, deadline=None)
def test_zipf_samples_always_in_range(n, theta, count):
    zipf = ZipfGenerator(n, theta=theta, scramble=True)
    samples = zipf.sample(count)
    assert samples.min() >= 0
    assert samples.max() < n
