"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import settings

# Deterministic property tests: same examples on every run.
settings.register_profile("repro", derandomize=True, deadline=None)
settings.load_profile("repro")

from repro import config
from repro.core.buffer import Tier, TieredBufferPool
from repro.core.placement import DbCostPolicy
from repro.sim.interconnect import AccessPath, Link
from repro.sim.memory import MemoryDevice
from repro.storage.disk import StorageDevice
from repro.storage.file import PageFile


@pytest.fixture
def dram_device() -> MemoryDevice:
    """A local DDR5 device."""
    return MemoryDevice(config.local_ddr5())


@pytest.fixture
def cxl_device() -> MemoryDevice:
    """A direct-attached CXL expander."""
    return MemoryDevice(config.cxl_expander_ddr5())


@pytest.fixture
def dram_path(dram_device: MemoryDevice) -> AccessPath:
    """Zero-hop path to local DRAM."""
    return AccessPath(device=dram_device)


@pytest.fixture
def cxl_path(cxl_device: MemoryDevice) -> AccessPath:
    """One-port path to a CXL expander."""
    return AccessPath(device=cxl_device, links=(Link(config.cxl_port()),))


@pytest.fixture
def pagefile() -> PageFile:
    """An NVMe-backed page file with 256 pre-allocated pages."""
    pf = PageFile(StorageDevice())
    pf.allocate_pages(256)
    return pf


@pytest.fixture
def small_pool(dram_path: AccessPath, cxl_path: AccessPath,
               pagefile: PageFile) -> TieredBufferPool:
    """A two-tier pool: 8 DRAM frames over 32 CXL frames, NVMe-backed."""
    tiers = [
        Tier(name="dram", path=dram_path, capacity_pages=8),
        Tier(name="cxl", path=cxl_path, capacity_pages=32),
    ]
    return TieredBufferPool(tiers=tiers, backing=pagefile,
                            placement=DbCostPolicy(rebalance_interval=50))
