"""RDMA baseline fabric and RAS failure handling (E4 / E10 backbones)."""

import pytest

from repro import config
from repro.errors import TopologyError
from repro.sim.events import Simulator
from repro.sim.memory import MemoryDevice
from repro.sim.ras import (
    CXL_POOL_PATH,
    REMOTE_SERVER_PATH,
    FailureInjector,
    RASMonitor,
    TimeoutMonitor,
    path_failure_probability,
)
from repro.sim.rdma import RDMAFabric
from repro.units import ms, us


@pytest.fixture
def fabric() -> RDMAFabric:
    fabric = RDMAFabric()
    fabric.add_host("a")
    fabric.add_host("b")
    return fabric


class TestRDMAFabric:
    def test_small_read_is_latency_floor(self, fabric):
        t = fabric.one_sided_read_time("a", "b", 64)
        assert t >= config.RDMA_BASE_LATENCY_NS
        assert t < config.RDMA_BASE_LATENCY_NS + us(1)

    def test_rdma_at_least_2_5x_slower_than_cxl(self, fabric):
        # Paper Sec 2.5: "a difference of at least 2.5x".
        rdma = fabric.one_sided_read_time("a", "b", 64)
        cxl_switched = (config.CXL_DRAM_LOAD_NS
                        + config.CXL_SWITCH_LATENCY_NS)
        assert rdma / cxl_switched >= 2.5

    def test_large_transfer_bandwidth_limited(self, fabric):
        size = 1024 * 1024 * 1024
        t = fabric.one_sided_read_time("a", "b", size)
        effective = size / t
        assert effective == pytest.approx(50.0, rel=0.05)  # GB/s

    def test_nic_wastes_pcie(self, fabric):
        nic = fabric.nic("a")
        assert nic.wasted_pcie_fraction > 0.20

    def test_rpc_is_two_crossings(self, fabric):
        one_way = fabric.one_sided_write_time("a", "b", 128)
        rpc = fabric.rpc_time("a", "b", 128, 128)
        assert rpc == pytest.approx(2 * one_way, rel=0.05)

    def test_contended_sends_queue(self, fabric):
        t1 = fabric.send_completion("a", "b", 1024 * 1024, 0.0)
        t2 = fabric.send_completion("a", "b", 1024 * 1024, 0.0)
        assert t2 > t1

    def test_self_rdma_rejected(self, fabric):
        with pytest.raises(TopologyError):
            fabric.one_sided_read_time("a", "a", 64)

    def test_unknown_host_rejected(self, fabric):
        with pytest.raises(TopologyError):
            fabric.one_sided_read_time("a", "ghost", 64)

    def test_duplicate_host_rejected(self, fabric):
        with pytest.raises(TopologyError):
            fabric.add_host("a")

    def test_stats(self, fabric):
        fabric.one_sided_read_time("a", "b", 100)
        fabric.one_sided_write_time("a", "b", 200)
        assert fabric.stats.reads == 1
        assert fabric.stats.writes == 1
        assert fabric.stats.bytes == 300


class TestFailureDetection:
    def _run(self, monitor_kwargs=None, timeout_kwargs=None,
             fail_at=ms(7.0)):
        sim = Simulator()
        device = MemoryDevice(config.cxl_expander_ddr5())
        injector = FailureInjector(sim)
        ras = RASMonitor(**(monitor_kwargs or {}))
        timeout = TimeoutMonitor(**(timeout_kwargs or {}))
        injector.attach(ras)
        injector.attach(timeout)
        injector.fail_at(device, fail_at)
        sim.run()
        return device, ras, timeout

    def test_device_actually_fails(self):
        device, _ras, _timeout = self._run()
        assert not device.healthy

    def test_ras_detects_within_protocol_latency(self):
        _d, ras, _t = self._run()
        assert len(ras.records) == 1
        assert ras.records[0].detection_delay_ns == pytest.approx(us(10))

    def test_timeout_takes_heartbeats(self):
        _d, _ras, timeout = self._run()
        assert len(timeout.records) == 1
        delay = timeout.records[0].detection_delay_ns
        # Between 2 and 3 heartbeat intervals after the failure.
        assert ms(200) <= delay <= ms(300)

    def test_ras_orders_of_magnitude_faster(self):
        _d, ras, timeout = self._run()
        ratio = (timeout.records[0].detection_delay_ns
                 / ras.records[0].detection_delay_ns)
        assert ratio > 1_000

    def test_timeout_boundary_alignment(self):
        monitor = TimeoutMonitor(heartbeat_interval_ns=ms(100),
                                 miss_threshold=3)
        # Failure exactly on a heartbeat: that beat still succeeds.
        t = monitor.detection_time_ns(ms(100))
        assert t == pytest.approx(ms(400))

    def test_multiple_failures(self):
        sim = Simulator()
        injector = FailureInjector(sim)
        ras = RASMonitor()
        injector.attach(ras)
        devices = [MemoryDevice(config.cxl_expander_ddr5(),
                                name=f"d{i}") for i in range(3)]
        for i, device in enumerate(devices):
            injector.fail_at(device, ms(1.0 * (i + 1)))
        sim.run()
        assert len(ras.records) == 3
        assert [r.device_name for r in ras.records] == ["d0", "d1", "d2"]


class TestComponentFailureModel:
    def test_pool_path_fewer_components(self):
        assert len(CXL_POOL_PATH) < len(REMOTE_SERVER_PATH)

    def test_pool_path_less_likely_to_fail(self):
        # Paper Sec 2.6: lower component count -> lower failure odds.
        pool = path_failure_probability(CXL_POOL_PATH)
        remote = path_failure_probability(REMOTE_SERVER_PATH)
        assert pool < remote
        assert remote / pool > 3.0

    def test_probability_grows_with_horizon(self):
        one = path_failure_probability(CXL_POOL_PATH, 1.0)
        five = path_failure_probability(CXL_POOL_PATH, 5.0)
        assert 0.0 < one < five < 1.0
