"""MESI directory: the two invariants of Sec 2.1 plus traffic counts."""

import pytest

from repro.errors import CoherenceError
from repro.sim.coherence import (
    CoherenceDirectory,
    LineState,
    NonCoherentCopy,
)


@pytest.fixture
def directory() -> CoherenceDirectory:
    return CoherenceDirectory()


def two_agents(directory):
    return directory.register_agent(), directory.register_agent()


class TestProtocolTransitions:
    def test_first_read_gets_exclusive(self, directory):
        a, _b = two_agents(directory)
        directory.read(a, 1)
        assert directory.state_of(1) is LineState.EXCLUSIVE
        assert directory.holders_of(1) == {a}

    def test_second_read_shares(self, directory):
        a, b = two_agents(directory)
        directory.read(a, 1)
        directory.read(b, 1)
        assert directory.state_of(1) is LineState.SHARED
        assert directory.holders_of(1) == {a, b}

    def test_write_takes_modified(self, directory):
        a, _b = two_agents(directory)
        directory.write(a, 1)
        assert directory.state_of(1) is LineState.MODIFIED
        assert directory.holders_of(1) == {a}

    def test_write_invalidates_sharers(self, directory):
        a, b = two_agents(directory)
        directory.read(a, 1)
        directory.read(b, 1)
        directory.write(a, 1)
        # Invariant 1: only the writer's copy remains.
        assert directory.holders_of(1) == {a}
        assert directory.stats.invalidations_sent == 1

    def test_read_after_remote_write_forces_writeback(self, directory):
        a, b = two_agents(directory)
        directory.write(a, 1)
        directory.read(b, 1)
        assert directory.state_of(1) is LineState.SHARED
        assert directory.stats.writebacks == 1
        assert directory.holders_of(1) == {a, b}

    def test_silent_e_to_m_upgrade(self, directory):
        a, _b = two_agents(directory)
        directory.read(a, 1)   # E
        msgs = directory.write(a, 1)
        assert msgs == 0
        assert directory.state_of(1) is LineState.MODIFIED

    def test_repeat_access_by_holder_free(self, directory):
        a, _b = two_agents(directory)
        directory.write(a, 1)
        assert directory.write(a, 1) == 0
        assert directory.read(a, 1) == 0

    def test_eviction_of_modified_writes_back(self, directory):
        a, _b = two_agents(directory)
        directory.write(a, 1)
        msgs = directory.evict(a, 1)
        assert msgs == 1
        assert directory.state_of(1) is LineState.INVALID

    def test_eviction_of_shared_silent(self, directory):
        a, b = two_agents(directory)
        directory.read(a, 1)
        directory.read(b, 1)
        assert directory.evict(a, 1) == 0
        assert directory.holders_of(1) == {b}

    def test_eviction_of_last_sharer_invalidates(self, directory):
        a, b = two_agents(directory)
        directory.read(a, 1)
        directory.read(b, 1)
        directory.evict(a, 1)
        directory.evict(b, 1)
        assert directory.state_of(1) is LineState.INVALID

    def test_invariants_hold_through_a_mixed_run(self, directory):
        agents = [directory.register_agent() for _ in range(4)]
        import random
        rng = random.Random(0)
        for _ in range(2_000):
            agent = rng.choice(agents)
            line = rng.randrange(32)
            action = rng.random()
            if action < 0.5:
                directory.read(agent, line)
            elif action < 0.9:
                directory.write(agent, line)
            else:
                directory.evict(agent, line)
            directory.check_invariants()


class TestTrafficAccounting:
    def test_ping_pong_generates_invalidations(self, directory):
        a, b = two_agents(directory)
        for _ in range(10):
            directory.write(a, 1)
            directory.write(b, 1)
        assert directory.stats.invalidations_sent >= 19

    def test_read_mostly_sharing_is_cheap(self, directory):
        agents = [directory.register_agent() for _ in range(8)]
        for agent in agents:
            directory.read(agent, 1)
        before = directory.stats.messages
        for agent in agents:
            directory.read(agent, 1)
        # Re-reads by holders are free.
        assert directory.stats.messages == before

    def test_invalidations_per_write_scales_with_sharers(self, directory):
        agents = [directory.register_agent() for _ in range(8)]
        for agent in agents:
            directory.read(agent, 1)
        directory.write(agents[0], 1)
        assert directory.stats.invalidations_sent == 7


class TestDomainLimits:
    def test_max_agents_enforced(self):
        directory = CoherenceDirectory(max_agents=2)
        directory.register_agent()
        directory.register_agent()
        with pytest.raises(CoherenceError):
            directory.register_agent()

    def test_default_limit_is_cxl_spec(self):
        assert CoherenceDirectory().max_agents == 4096

    def test_duplicate_agent_rejected(self, directory):
        directory.register_agent(5)
        with pytest.raises(CoherenceError):
            directory.register_agent(5)

    def test_unknown_agent_rejected(self, directory):
        with pytest.raises(CoherenceError):
            directory.read(99, 1)


class TestNonCoherentCopy:
    """Fig 1(a): PCIe copies quietly go stale."""

    def test_copy_then_read_is_fresh(self):
        copy = NonCoherentCopy()
        copy.dma_copy([1, 2, 3])
        assert copy.device_read(1)
        assert copy.fresh_reads == 1

    def test_host_write_makes_copy_stale(self):
        copy = NonCoherentCopy()
        copy.dma_copy([1])
        copy.host_write(1)
        assert not copy.device_read(1)
        assert copy.stale_reads == 1

    def test_recopy_refreshes(self):
        copy = NonCoherentCopy()
        copy.dma_copy([1])
        copy.host_write(1)
        copy.dma_copy([1])
        assert copy.device_read(1)

    def test_read_before_copy_raises(self):
        with pytest.raises(CoherenceError):
            NonCoherentCopy().device_read(1)
