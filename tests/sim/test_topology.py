"""Rack topologies — the three architectures of Fig 2."""

import pytest

from repro import config
from repro.errors import TopologyError
from repro.sim.memory import MemoryDevice
from repro.sim.topology import RackTopology


class TestConstruction:
    def test_duplicate_names_rejected(self):
        rack = RackTopology()
        rack.add_host("h")
        with pytest.raises(TopologyError):
            rack.add_host("h")
        with pytest.raises(TopologyError):
            rack.add_switch("h")

    def test_connect_unknown_rejected(self):
        rack = RackTopology()
        rack.add_host("h")
        with pytest.raises(TopologyError):
            rack.connect("h", "ghost")

    def test_switch_port_exhaustion(self):
        rack = RackTopology()
        rack.add_switch("sw", ports=2)
        rack.add_host("h0")
        rack.add_host("h1")
        rack.add_host("h2")
        rack.connect("h0", "sw")
        rack.connect("h1", "sw")
        with pytest.raises(TopologyError):
            rack.connect("h2", "sw")

    def test_device_of(self):
        rack = RackTopology()
        host = rack.add_host("h")
        assert rack.device_of("h") is host.dram
        rack.add_switch("sw")
        with pytest.raises(TopologyError):
            rack.device_of("sw")

    def test_no_route(self):
        rack = RackTopology()
        rack.add_host("h")
        rack.add_expander("x", MemoryDevice(config.cxl_expander_ddr5()))
        with pytest.raises(TopologyError):
            rack.path("h", "x")


class TestFig2aLocalExpansion:
    def test_direct_attach_latency(self):
        rack = RackTopology.local_expansion()
        path = rack.path("host0", "cxl0")
        # Direct attach: no switch, so end-to-end == expander spec.
        assert path.read_latency_ns() == pytest.approx(
            config.CXL_DRAM_LOAD_NS
        )

    def test_local_dram_is_zero_hops(self):
        rack = RackTopology.local_expansion()
        path = rack.path("host0", "host0")
        assert path.hop_count == 0
        assert path.read_latency_ns() == pytest.approx(80.0)


class TestFig2bPooling:
    def test_one_switch_hop(self):
        rack = RackTopology.pooled(num_hosts=4)
        path = rack.path("host0", "pool0")
        assert path.read_latency_ns() == pytest.approx(
            config.CXL_DRAM_LOAD_NS + config.CXL_SWITCH_LATENCY_NS
        )

    def test_within_pond_envelope(self):
        rack = RackTopology.pooled(num_hosts=8)
        lat = rack.path("host3", "pool0").read_latency_ns()
        assert 200.0 <= lat <= 400.0

    def test_every_host_reaches_pool(self):
        rack = RackTopology.pooled(num_hosts=8)
        latencies = {
            rack.path(h.name, "pool0").read_latency_ns()
            for h in rack.hosts
        }
        assert len(latencies) == 1  # symmetric

    def test_host_to_host_memory_possible(self):
        # CXL also gives a path between hosts through the switch.
        rack = RackTopology.pooled(num_hosts=2)
        path = rack.path("host0", "host1")
        assert path.hop_count >= 2


class TestMultiRack:
    """Spanning a small number of racks (Sec 3.3)."""

    def test_local_rack_access_unchanged(self):
        topo = RackTopology.multi_rack(racks=2)
        local = topo.path("r0-host0", "r0-gfam").read_latency_ns()
        assert local == pytest.approx(
            config.CXL_DRAM_LOAD_NS + config.CXL_SWITCH_LATENCY_NS
        )

    def test_cross_rack_pays_optical_hop(self):
        topo = RackTopology.multi_rack(racks=2,
                                       inter_rack_latency_ns=150.0)
        local = topo.path("r0-host0", "r0-gfam").read_latency_ns()
        remote = topo.path("r0-host0", "r1-gfam").read_latency_ns()
        # Extra: the optical link plus the remote spine traversal.
        assert remote == pytest.approx(
            local + 150.0 + config.CXL_SWITCH_LATENCY_NS
        )

    def test_cross_rack_still_beats_rdma(self):
        from repro.sim.rdma import RDMAFabric
        topo = RackTopology.multi_rack(racks=3)
        worst = max(
            topo.path("r0-host0", f"r{r}-gfam").read_latency_ns()
            for r in range(3)
        )
        fabric = RDMAFabric()
        fabric.add_host("a")
        fabric.add_host("b")
        assert worst < fabric.one_sided_read_time("a", "b", 64) / 2.5

    def test_every_host_reaches_every_gfam(self):
        topo = RackTopology.multi_rack(racks=3, hosts_per_rack=2)
        for r in range(3):
            for h in range(2):
                for g in range(3):
                    path = topo.path(f"r{r}-host{h}", f"r{g}-gfam")
                    assert path.read_latency_ns() > 0

    def test_invalid_rack_count(self):
        with pytest.raises(TopologyError):
            RackTopology.multi_rack(racks=0)


class TestGIMSegments:
    """CXL 3.x Global Integrated Memory (Sec 3.3 ref [8])."""

    def _rack(self):
        rack = RackTopology.pooled(num_hosts=2)
        segment = rack.add_gim_segment("host0", 8 * 1024 ** 3)
        rack.connect("host0-gim", "switch0")
        return rack, segment

    def test_owner_reaches_segment_at_local_speed(self):
        rack, _segment = self._rack()
        path = rack.path("host0", "host0-gim")
        assert path.read_latency_ns() == pytest.approx(
            config.LOCAL_DRAM_LOAD_NS
        )

    def test_peer_pays_the_fabric(self):
        rack, _segment = self._rack()
        peer = rack.path("host1", "host0-gim")
        owner = rack.path("host0", "host0-gim")
        assert peer.read_latency_ns() > owner.read_latency_ns()
        # One switch traversal on the peer route.
        assert peer.read_latency_ns() >= config.CXL_SWITCH_LATENCY_NS

    def test_segment_must_fit_host_dram(self):
        rack = RackTopology.pooled(num_hosts=1)
        host_dram = rack.host("host0").dram.capacity_bytes
        with pytest.raises(TopologyError):
            rack.add_gim_segment("host0", host_dram + 1)
        with pytest.raises(TopologyError):
            rack.add_gim_segment("host0", 0)

    def test_segment_capacity(self):
        rack, segment = self._rack()
        assert segment.capacity_bytes == 8 * 1024 ** 3


class TestPeerToPeer:
    """CXL 3.x device-to-device paths (Sec 2.3/2.5)."""

    def test_pool_to_pool_path_exists(self):
        rack = RackTopology.disaggregated(num_pools=2)
        path = rack.peer_path("gfam0", "gfam1")
        assert path.hop_count >= 1
        assert path.device.name == "gfam1"

    def test_peer_path_skips_hosts(self):
        rack = RackTopology.pooled(num_hosts=2)
        rack.add_expander(
            "acc-mem",
            MemoryDevice(config.cxl_expander_hbm(), name="acc-mem"),
        )
        rack.connect("acc-mem", "switch0")
        path = rack.peer_path("acc-mem", "pool0")
        # Route: acc-mem -> switch0 -> pool0 (one switch traversal).
        assert path.read_latency_ns() == pytest.approx(
            config.CXL_DRAM_LOAD_NS + config.CXL_SWITCH_LATENCY_NS
        )

    def test_unknown_source_rejected(self):
        rack = RackTopology.pooled(num_hosts=1)
        with pytest.raises(TopologyError):
            rack.peer_path("ghost", "pool0")

    def test_host_path_delegates_to_peer_path(self):
        rack = RackTopology.pooled(num_hosts=2)
        assert (rack.path("host0", "pool0").read_latency_ns()
                == rack.peer_path("host0", "pool0").read_latency_ns())


class TestFig2cDisaggregation:
    def test_cascaded_switches_two_hops(self):
        rack = RackTopology.disaggregated(num_hosts=4, cascade=True)
        path = rack.path("host0", "gfam0")
        # leaf + spine traversals.
        assert path.read_latency_ns() == pytest.approx(
            config.CXL_DRAM_LOAD_NS + 2 * config.CXL_SWITCH_LATENCY_NS
        )

    def test_still_within_pond_envelope(self):
        rack = RackTopology.disaggregated()
        lat = rack.path("host5", "gfam1").read_latency_ns()
        assert 200.0 <= lat <= 400.0

    def test_gfam_flag(self):
        rack = RackTopology.disaggregated(num_pools=2)
        assert all(p.gfam for p in rack.pools)

    def test_all_hosts_reach_all_pools(self):
        rack = RackTopology.disaggregated(num_hosts=8, num_pools=2)
        for host in rack.hosts:
            for pool in rack.pools:
                assert rack.path(host.name, pool.name).hop_count >= 1

    def test_flat_beats_cascade_for_near_leaf(self):
        flat = RackTopology.disaggregated(num_hosts=2, cascade=False)
        cascade = RackTopology.disaggregated(num_hosts=2, cascade=True)
        assert (flat.path("host0", "gfam0").read_latency_ns()
                <= cascade.path("host0", "gfam0").read_latency_ns())
