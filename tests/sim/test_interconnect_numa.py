"""Access paths and NUMA systems — the E1 calibration backbone."""

import pytest

from repro import config
from repro.errors import TopologyError
from repro.sim.interconnect import PREFETCH_DEPTH, AccessPath, Link
from repro.sim.memory import MemoryDevice
from repro.sim.numa import NUMASystem


def _numa_with_cxl():
    system = NUMASystem()
    s0 = system.add_socket(MemoryDevice(config.local_ddr5(), name="s0"))
    s1 = system.add_socket(MemoryDevice(config.local_ddr5(), name="s1"))
    cxl = system.add_cxl_expander(
        MemoryDevice(config.cxl_expander_ddr5()), attached_to=s0
    )
    return system, s0, s1, cxl


class TestAccessPath:
    def test_zero_hop_latency_is_device_latency(self):
        device = MemoryDevice(config.local_ddr5())
        path = AccessPath(device=device)
        assert path.read_latency_ns() == config.LOCAL_DRAM_LOAD_NS

    def test_hops_add_latency(self):
        device = MemoryDevice(config.cxl_expander_ddr5())
        switch = Link(config.cxl_switch_hop())
        path = AccessPath(device=device, links=(switch,))
        assert path.read_latency_ns() == pytest.approx(
            config.CXL_DRAM_LOAD_NS + config.CXL_SWITCH_LATENCY_NS
        )

    def test_bandwidth_is_narrowest(self):
        device = MemoryDevice(config.cxl_expander_ddr5())
        narrow = Link(config.cxl_port(lanes=4))  # ~15.75 GB/s
        path = AccessPath(device=device, links=(narrow,))
        assert path.read_bandwidth == pytest.approx(15.75, rel=0.01)

    def test_sequential_amortizes_latency(self):
        device = MemoryDevice(config.cxl_expander_ddr5())
        path = AccessPath(device=device)
        random_t = path.read_time(4096)
        seq_t = path.read_time_sequential(4096)
        assert seq_t < random_t
        saved = path.read_latency_ns() * (1 - 1 / PREFETCH_DEPTH)
        assert random_t - seq_t == pytest.approx(saved)

    def test_extended_prepends_hop(self):
        device = MemoryDevice(config.cxl_expander_ddr5())
        path = AccessPath(device=device)
        extended = path.extended(Link(config.cxl_switch_hop()))
        assert extended.hop_count == 1
        assert path.hop_count == 0  # original untouched

    def test_write_time_uses_store_bandwidth(self):
        device = MemoryDevice(config.local_ddr5())
        path = AccessPath(device=device)
        assert path.write_bandwidth < path.read_bandwidth


class TestNUMACalibration:
    """The paper's Sec 2.4 numbers, measured on the model."""

    def test_local_80ns(self):
        system, s0, *_ = _numa_with_cxl()
        assert system.path(s0, s0).read_latency_ns() == pytest.approx(80.0)

    def test_remote_numa_140ns(self):
        system, s0, s1, _ = _numa_with_cxl()
        assert system.path(s0, s1).read_latency_ns() == pytest.approx(140.0)

    def test_cxl_is_1_35x_numa(self):
        system, s0, s1, cxl = _numa_with_cxl()
        numa = system.path(s0, s1).read_latency_ns()
        cxl_lat = system.path(s0, cxl).read_latency_ns()
        assert cxl_lat / numa == pytest.approx(1.35, rel=0.01)

    def test_cxl_from_other_socket_adds_upi(self):
        system, s0, s1, cxl = _numa_with_cxl()
        near = system.path(s0, cxl).read_latency_ns()
        far = system.path(s1, cxl).read_latency_ns()
        assert far == pytest.approx(near + 60.0)

    def test_switched_expander_slower(self):
        system = NUMASystem()
        s0 = system.add_socket(MemoryDevice(config.local_ddr5()))
        direct = system.add_cxl_expander(
            MemoryDevice(config.cxl_expander_ddr5(), name="direct"),
            attached_to=s0,
        )
        switched = system.add_cxl_expander(
            MemoryDevice(config.cxl_expander_ddr5(), name="switched"),
            attached_to=s0, through_switch=True,
        )
        assert (system.path(s0, switched).read_latency_ns()
                > system.path(s0, direct).read_latency_ns())


class TestNUMAStructure:
    def test_cxl_node_has_no_cores(self):
        system, _s0, _s1, cxl = _numa_with_cxl()
        assert cxl.cores == 0
        assert cxl.is_cxl
        assert cxl in system.cxl_nodes
        assert cxl not in system.sockets

    def test_coreless_node_cannot_originate(self):
        system, s0, _s1, cxl = _numa_with_cxl()
        with pytest.raises(TopologyError):
            system.path(cxl, s0)

    def test_total_capacity_includes_expander(self):
        system, s0, s1, cxl = _numa_with_cxl()
        expected = (s0.device.capacity_bytes + s1.device.capacity_bytes
                    + cxl.device.capacity_bytes)
        assert system.total_capacity_bytes == expected

    def test_node_lookup(self):
        system, s0, *_ = _numa_with_cxl()
        assert system.node(0) is s0
        with pytest.raises(TopologyError):
            system.node(99)

    def test_socket_requires_cores(self):
        system = NUMASystem()
        with pytest.raises(TopologyError):
            system.add_socket(MemoryDevice(config.local_ddr5()), cores=0)
