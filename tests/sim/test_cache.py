"""Per-agent cache model over the coherence directory."""

import pytest

from repro.errors import ConfigError
from repro.sim.cache import AgentCache
from repro.sim.coherence import CoherenceDirectory, LineState


def make_cache(capacity=1024, ways=4):
    directory = CoherenceDirectory()
    return AgentCache(directory, capacity_bytes=capacity, ways=ways), directory


class TestGeometry:
    def test_sets_and_ways(self):
        cache, _ = make_cache(capacity=1024, ways=4)  # 16 lines
        assert cache.num_sets == 4
        assert cache.ways == 4

    def test_indivisible_capacity_rejected(self):
        directory = CoherenceDirectory()
        with pytest.raises(ConfigError):
            AgentCache(directory, capacity_bytes=1000, ways=4)

    def test_line_of(self):
        cache, _ = make_cache()
        assert cache.line_of(0) == 0
        assert cache.line_of(63) == 0
        assert cache.line_of(64) == 1


class TestHitsAndMisses:
    def test_first_access_misses(self):
        cache, _ = make_cache()
        cache.load(0)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_second_access_hits(self):
        cache, _ = make_cache()
        cache.load(0)
        cache.load(0)
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_capacity_eviction(self):
        cache, _ = make_cache(capacity=512, ways=2)  # 8 lines, 4 sets
        # Three lines mapping to the same set (stride = num_sets*64).
        stride = cache.num_sets * 64
        for i in range(3):
            cache.load(i * stride)
        assert cache.stats.evictions == 1
        assert not cache.contains(cache.line_of(0))

    def test_lru_within_set(self):
        cache, _ = make_cache(capacity=512, ways=2)
        stride = cache.num_sets * 64
        cache.load(0)          # A
        cache.load(stride)     # B
        cache.load(0)          # touch A -> B is LRU
        cache.load(2 * stride)  # evicts B
        assert cache.contains(cache.line_of(0))
        assert not cache.contains(cache.line_of(stride))


class TestCoherenceIntegration:
    def test_two_caches_share_then_invalidate(self):
        directory = CoherenceDirectory()
        c1 = AgentCache(directory, capacity_bytes=1024, ways=4)
        c2 = AgentCache(directory, capacity_bytes=1024, ways=4)
        c1.load(0)
        c2.load(0)
        assert directory.state_of(0) is LineState.SHARED
        c1.store(0)
        assert directory.holders_of(0) == {c1.agent_id}
        directory.check_invariants()

    def test_eviction_informs_directory(self):
        directory = CoherenceDirectory()
        cache = AgentCache(directory, capacity_bytes=512, ways=2)
        stride = cache.num_sets * 64
        cache.store(0)
        cache.load(stride)
        cache.load(2 * stride)  # evicts line 0 (dirty -> writeback)
        assert directory.stats.writebacks >= 1

    def test_invalidate_all(self):
        directory = CoherenceDirectory()
        cache = AgentCache(directory, capacity_bytes=1024, ways=4)
        for i in range(8):
            cache.store(i * 64)
        cache.invalidate_all()
        for i in range(8):
            assert not cache.contains(i)
            assert directory.state_of(i) is LineState.INVALID

    def test_false_sharing_visible_in_traffic(self):
        # Two agents writing different bytes of the SAME line ping-pong.
        directory = CoherenceDirectory()
        c1 = AgentCache(directory, capacity_bytes=1024, ways=4)
        c2 = AgentCache(directory, capacity_bytes=1024, ways=4)
        for _ in range(10):
            c1.store(0)   # byte 0
            c2.store(32)  # byte 32, same line
        assert directory.stats.invalidations_sent >= 19
