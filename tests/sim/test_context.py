"""SimContext: the one-clock invariant, spans, ambient wiring."""

import pytest

from repro.core.buffer import TieredBufferPool
from repro.core.engine import ScaleUpEngine
from repro.errors import BufferPoolError, SimulationError
from repro.metrics.registry import MetricsRegistry
from repro.sim.clock import SimClock
from repro.sim.context import (
    SimContext,
    ambient_instrumentation,
    set_ambient,
)
from repro.sim.events import Simulator
from repro.sim.trace import NULL_SINK, MemoryTraceSink


class TestDefaults:
    def test_fresh_context(self):
        ctx = SimContext()
        assert ctx.now == 0.0
        assert ctx.trace is NULL_SINK
        assert isinstance(ctx.metrics, MetricsRegistry)

    def test_slots(self):
        with pytest.raises(AttributeError):
            SimContext().extra = 1


class TestClockInvariant:
    def test_bind_own_clock_ok(self):
        ctx = SimContext()
        assert ctx.bind_clock(ctx.clock, owner="pool") is ctx.clock
        assert ctx.clock_owners == ("pool",)

    def test_second_clock_rejected(self):
        ctx = SimContext()
        ctx.bind_clock(ctx.clock, owner="pool")
        with pytest.raises(SimulationError, match="exactly one clock"):
            ctx.bind_clock(SimClock(), owner="rogue")

    def test_pool_rejects_mismatched_clock_and_context(self):
        ctx = SimContext()
        engine = ScaleUpEngine.build(dram_pages=4, with_storage=False,
                                     ctx=ctx)
        with pytest.raises(BufferPoolError, match="exactly one clock"):
            TieredBufferPool(tiers=list(engine.pool.tiers),
                             clock=SimClock(), ctx=ctx)

    def test_engine_run_binds_single_clock(self):
        ctx = SimContext()
        engine = ScaleUpEngine.build(dram_pages=8, with_storage=False,
                                     ctx=ctx)
        assert engine.pool.clock is ctx.clock
        assert "buffer-pool" in ctx.clock_owners
        assert any(o.startswith("engine:") for o in ctx.clock_owners)

    def test_simulator_adopts_context_clock(self):
        ctx = SimContext()
        sim = Simulator(ctx=ctx)
        assert sim.clock is ctx.clock
        assert "simulator" in ctx.clock_owners


class TestSpans:
    def test_span_records_virtual_time(self):
        sink = MemoryTraceSink()
        ctx = SimContext(trace=sink)
        ctx.clock.advance(100.0)
        with ctx.span("work", cat="test", args={"k": 1}):
            ctx.clock.advance(250.0)
        (span,) = sink.spans
        assert span.start_ns == 100.0
        assert span.end_ns == 350.0
        assert span.args == {"k": 1}

    def test_disabled_span_is_shared_noop(self):
        ctx = SimContext()
        assert ctx.span("a") is ctx.span("b")

    def test_event(self):
        sink = MemoryTraceSink()
        ctx = SimContext(trace=sink)
        ctx.clock.advance(42.0)
        ctx.event("boom", cat="ras")
        assert sink.instants == [("boom", "ras", 42.0, None)]

    def test_event_disabled_noop(self):
        SimContext().event("boom")  # must not raise


class TestAmbient:
    def test_ambient_picks_up_installed_pair(self):
        sink = MemoryTraceSink()
        metrics = MetricsRegistry()
        previous = set_ambient(trace=sink, metrics=metrics)
        try:
            ctx = SimContext.ambient()
            assert ctx.trace is sink
            assert ctx.metrics is metrics
            assert ambient_instrumentation() == (sink, metrics)
        finally:
            set_ambient(*previous)

    def test_ambient_defaults_without_install(self):
        previous = set_ambient(None, None)
        try:
            ctx = SimContext.ambient()
            assert ctx.trace is NULL_SINK
            assert isinstance(ctx.metrics, MetricsRegistry)
        finally:
            set_ambient(*previous)

    def test_ambient_contexts_get_fresh_clocks(self):
        # Sharing a sink must NOT share a clock: engines stay
        # independently timed so traced runs match untraced ones.
        sink = MemoryTraceSink()
        previous = set_ambient(trace=sink)
        try:
            a = SimContext.ambient()
            b = SimContext.ambient()
            assert a.clock is not b.clock
        finally:
            set_ambient(*previous)


class TestEngineIntegration:
    def test_traced_run_emits_spans_and_metrics(self):
        sink = MemoryTraceSink()
        ctx = SimContext(trace=sink)
        engine = ScaleUpEngine.build(dram_pages=4, cxl_pages=16,
                                     with_storage=False, ctx=ctx)
        from repro.workloads.ycsb import YCSBConfig, ycsb_trace
        cfg = YCSBConfig(num_pages=30, num_ops=200, seed=7)
        report = engine.run(ycsb_trace(cfg))
        names = {span.name for span in sink.spans}
        assert any(name.startswith("run:") for name in names)
        assert any(name == "pool.fault" for name in names)
        # Spans are monotone in virtual time and within the run.
        for span in sink.spans:
            assert span.end_ns >= span.start_ns
        assert report.metrics["engine"]["ops"] == 200
        assert "pool" in report.metrics
        assert "device" in report.metrics
