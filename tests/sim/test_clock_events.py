"""Discrete-event core: clock and event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.events import Simulator


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(100.0).now == 100.0

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            SimClock(-1.0)

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(50.0) == 50.0
        assert clock.advance(25.0) == 75.0

    def test_advance_zero_allowed(self):
        clock = SimClock(10.0)
        assert clock.advance(0.0) == 10.0

    def test_negative_advance_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().advance(-5.0)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(500.0)
        assert clock.now == 500.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(100.0)
        with pytest.raises(SimulationError):
            clock.advance_to(50.0)


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.at(30.0, fired.append, "c")
        sim.at(10.0, fired.append, "a")
        sim.at(20.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_fifo_among_equal_timestamps(self):
        sim = Simulator()
        fired = []
        for tag in ("first", "second", "third"):
            sim.at(5.0, fired.append, tag)
        sim.run()
        assert fired == ["first", "second", "third"]

    def test_clock_tracks_dispatch(self):
        sim = Simulator()
        sim.at(42.0, lambda: None)
        sim.run()
        assert sim.now == 42.0

    def test_after_is_relative(self):
        sim = Simulator()
        times = []
        sim.at(10.0, lambda: sim.after(5.0, lambda: times.append(sim.now)))
        sim.run()
        assert times == [15.0]

    def test_scheduling_in_past_rejected(self):
        sim = Simulator()
        sim.at(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().after(-1.0, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.at(10.0, fired.append, "x")
        event.cancel()
        sim.at(20.0, fired.append, "y")
        sim.run()
        assert fired == ["y"]

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.at(10.0, fired.append, "early")
        sim.at(100.0, fired.append, "late")
        sim.run(until_ns=50.0)
        assert fired == ["early"]
        assert sim.now == 50.0
        assert sim.pending == 1

    def test_run_until_then_resume(self):
        sim = Simulator()
        fired = []
        sim.at(10.0, fired.append, 1)
        sim.at(100.0, fired.append, 2)
        sim.run(until_ns=50.0)
        sim.run()
        assert fired == [1, 2]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_dispatched_counter(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.at(t, lambda: None)
        sim.run()
        assert sim.dispatched == 3

    def test_runaway_guard(self):
        sim = Simulator()

        def reschedule():
            sim.after(1.0, reschedule)

        sim.at(0.0, reschedule)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_chained_events_extend_simulation(self):
        sim = Simulator()
        counter = []

        def tick(n):
            counter.append(n)
            if n < 5:
                sim.after(10.0, tick, n + 1)

        sim.at(0.0, tick, 1)
        sim.run()
        assert counter == [1, 2, 3, 4, 5]
        assert sim.now == 40.0
