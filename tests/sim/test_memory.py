"""Memory devices: timing, contention, allocation, failure."""

import pytest

from repro import config
from repro.errors import AddressError, ConfigError, DeviceFailure
from repro.sim.memory import MemoryDevice
from repro.units import CACHE_LINE, KIB


@pytest.fixture
def device() -> MemoryDevice:
    return MemoryDevice(config.local_ddr5(capacity_bytes=64 * KIB))


class TestTiming:
    def test_line_load_is_latency_dominated(self, device):
        t = device.load_time(CACHE_LINE)
        assert t == pytest.approx(
            device.spec.load_latency_ns
            + CACHE_LINE / device.spec.effective_load_bandwidth
        )

    def test_large_load_is_bandwidth_dominated(self, device):
        t = device.load_time(16 * 1024 * 1024)
        transfer = 16 * 1024 * 1024 / device.spec.effective_load_bandwidth
        assert t == pytest.approx(transfer, rel=0.01)

    def test_cxl_load_slower_than_dram(self):
        dram = MemoryDevice(config.local_ddr5())
        cxl = MemoryDevice(config.cxl_expander_ddr5())
        assert cxl.load_time() > dram.load_time()

    def test_stats_counted(self, device):
        device.load_time(64)
        device.load_time(64)
        device.store_time(128)
        assert device.stats.loads == 2
        assert device.stats.stores == 1
        assert device.stats.load_bytes == 128
        assert device.stats.bytes_total == 256
        assert device.stats.accesses == 3

    def test_contended_loads_queue(self, device):
        t1 = device.load_completion(1024 * 1024, now_ns=0.0)
        t2 = device.load_completion(1024 * 1024, now_ns=0.0)
        assert t2 > t1

    def test_efficiency_inflates_channel_use(self):
        # A CXL device (46% efficient) should occupy its raw channel
        # longer than a local one (85%) for the same payload.
        cxl = MemoryDevice(config.cxl_expander_ddr5())
        cxl.load_completion(1024 * 1024, 0.0)
        raw = cxl.channel.bytes_transferred
        assert raw == pytest.approx(1024 * 1024 / 0.46, rel=0.01)

    def test_reset_stats(self, device):
        device.load_time(64)
        device.reset_stats()
        assert device.stats.accesses == 0
        assert device.channel.bytes_transferred == 0


class TestAllocation:
    def test_first_fit(self, device):
        a = device.allocate(16 * KIB)
        b = device.allocate(16 * KIB)
        assert a == 0
        assert b == 16 * KIB
        assert device.allocated_bytes == 32 * KIB
        assert device.free_bytes == 32 * KIB

    def test_free_and_reuse(self, device):
        a = device.allocate(16 * KIB)
        device.allocate(16 * KIB)
        device.free(a)
        c = device.allocate(8 * KIB)
        assert c == 0  # reuses the first hole

    def test_coalescing(self, device):
        a = device.allocate(16 * KIB)
        b = device.allocate(16 * KIB)
        c = device.allocate(16 * KIB)
        device.free(a)
        device.free(b)
        # a+b coalesced: a 32 KiB allocation fits at offset 0.
        big = device.allocate(32 * KIB)
        assert big == 0
        device.free(big)
        device.free(c)
        assert device.allocated_bytes == 0

    def test_exhaustion_raises(self, device):
        device.allocate(64 * KIB)
        with pytest.raises(AddressError):
            device.allocate(1)

    def test_double_free_raises(self, device):
        a = device.allocate(KIB)
        device.free(a)
        with pytest.raises(AddressError):
            device.free(a)

    def test_zero_allocation_rejected(self, device):
        with pytest.raises(ConfigError):
            device.allocate(0)


class TestFailure:
    def test_failed_device_raises_on_access(self, device):
        device.fail()
        assert not device.healthy
        with pytest.raises(DeviceFailure):
            device.load_time(64)
        with pytest.raises(DeviceFailure):
            device.store_time(64)
        with pytest.raises(DeviceFailure):
            device.allocate(KIB)

    def test_repair_restores(self, device):
        device.fail()
        device.repair()
        assert device.healthy
        device.load_time(64)

    def test_kind_helpers(self):
        assert MemoryDevice(config.cxl_expander_ddr5()).is_cxl
        assert MemoryDevice(config.cxl_expander_hbm()).is_cxl
        assert not MemoryDevice(config.local_ddr5()).is_cxl
