"""Bit-identity fuzz for the exact repeated-addition ladders."""

from __future__ import annotations

import math
import random
import struct

import numpy as np
import pytest

from repro.sim.ladder import chain_repeat, repeat_add, repeat_add_vec


def bits(x: float) -> bytes:
    return struct.pack("<d", x)


def scalar_repeat(x: float, d: float, n: int) -> float:
    for _ in range(n):
        x = x + d
    return x


def scalar_chain(x, deltas, n, mid_index):
    mids = []
    for _ in range(n):
        for j, d in enumerate(deltas):
            if j == mid_index:
                mids.append(x)
            x = x + d
        if mid_index == len(deltas):
            mids.append(x)
    return x, mids


NS = [0, 1, 2, 3, 7, 31, 32, 33, 100, 1000, 12345]


def check(x, d, n):
    got = repeat_add(x, d, n)
    want = scalar_repeat(x, d, n)
    assert bits(got) == bits(want), (x, d, n, got, want)


def test_repeat_add_random_same_sign():
    rng = random.Random(1234)
    for _ in range(300):
        x = rng.uniform(0, 1) * 10.0 ** rng.randint(-3, 12)
        d = rng.uniform(0, 1) * 10.0 ** rng.randint(-6, 6)
        n = rng.choice(NS)
        check(x, d, n)
        check(-x, -d, n)


def test_repeat_add_extreme_magnitudes():
    rng = random.Random(99)
    for _ in range(200):
        x = rng.uniform(0.5, 2.0) * 2.0 ** rng.randint(-1070, 1000)
        d = rng.uniform(0.5, 2.0) * 2.0 ** rng.randint(-1074, 990)
        check(x, d, rng.choice(NS))


def test_repeat_add_exact_ties():
    rng = random.Random(7)
    for _ in range(200):
        x = rng.uniform(1.0, 2.0) * 2.0 ** rng.randint(-30, 40)
        u = math.ulp(x)
        q = rng.randint(0, 9)
        d = (q + 0.5) * u          # exact tie every step
        check(x, d, rng.choice(NS))
        check(x, 0.5 * u, 10000)   # steady-zero tie: absorbs after parity fix


def test_repeat_add_absorption_and_binade_edges():
    for x in [1.0, 1.5, 2.0 - math.ulp(1.0), 2.0, 3.0, 2.0 ** 52]:
        u = math.ulp(x)
        check(x, 0.25 * u, 5000)          # rounds down forever: absorbed
        check(x, 0.75 * u, 5000)          # rounds up every step
        check(x, u, 5000)
        check(x, 1000.5 * u, 5000)
    # walk across many binades
    check(1.0, 0.3, 100000)
    check(0.0, 1e-3, 100000)
    check(5e-324, 5e-324, 100000)


def test_repeat_add_special_values():
    check(1.0, 0.0, 7)
    check(-0.0, 0.0, 7)
    check(0.0, 1.5, 7)
    check(-0.0, 1.5, 7)
    for n in [0, 1, 2, 5]:
        for x, d in [(math.inf, 1.0), (1.0, math.inf), (-math.inf, 1.0),
                     (1.0, -math.inf)]:
            assert bits(repeat_add(x, d, n)) == bits(scalar_repeat(x, d, n))
    assert math.isnan(repeat_add(math.nan, 1.0, 3))
    assert math.isnan(repeat_add(1.0, math.nan, 3))


def test_repeat_add_mixed_signs():
    rng = random.Random(5)
    for _ in range(100):
        x = rng.uniform(-10, 10)
        d = rng.uniform(-1, 1)
        check(x, d, rng.randint(0, 200))


def test_chain_repeat_matches_scalar():
    rng = random.Random(42)
    for _ in range(150):
        x = rng.uniform(0, 1) * 10.0 ** rng.randint(0, 10)
        nd = rng.randint(1, 3)
        deltas = tuple(rng.uniform(0, 1) * 10.0 ** rng.randint(-2, 4)
                       for _ in range(nd))
        if any(d == 0.0 for d in deltas):
            continue
        n = rng.choice(NS)
        mid = rng.randint(0, nd)
        got_x, got_mids = chain_repeat(x, deltas, n, mid)
        want_x, want_mids = scalar_chain(x, deltas, n, mid)
        assert bits(got_x) == bits(want_x)
        assert len(got_mids) == len(want_mids)
        for a, b in zip(got_mids, want_mids):
            assert bits(a) == bits(b), (x, deltas, n, mid)
        assert all(isinstance(v, float) for v in got_mids)


def test_chain_repeat_tie_cycles():
    x = 3.0
    u = math.ulp(x)
    for deltas in [(2.5 * u, 1.0 * u), (0.5 * u,), (1.5 * u, 0.5 * u),
                   (3.5 * u, 2.5 * u, 1.5 * u)]:
        got_x, got_mids = chain_repeat(x, deltas, 4000, 1 % len(deltas))
        want_x, want_mids = scalar_chain(x, deltas, 4000, 1 % len(deltas))
        assert bits(got_x) == bits(want_x)
        assert [bits(a) for a in got_mids] == [bits(b) for b in want_mids]


def test_chain_repeat_typical_sim_deltas():
    # think/latency shapes the block lane actually produces
    got_x, got_mids = chain_repeat(1_000_000.0, (50.0, 1361.328125), 4096, 1)
    want_x, want_mids = scalar_chain(1_000_000.0, (50.0, 1361.328125), 4096, 1)
    assert bits(got_x) == bits(want_x)
    assert [bits(a) for a in got_mids] == [bits(b) for b in want_mids]
    got_x, got_mids = chain_repeat(7.3e9, (333.33333333333,), 4096, 0)
    want_x, want_mids = scalar_chain(7.3e9, (333.33333333333,), 4096, 0)
    assert bits(got_x) == bits(want_x)
    assert [bits(a) for a in got_mids] == [bits(b) for b in want_mids]


def test_repeat_add_vec_matches_scalar():
    rng = random.Random(2026)
    for _ in range(40):
        size = rng.randint(1, 64)
        heat = np.array([rng.uniform(0, 1) * 10.0 ** rng.randint(-6, 6)
                         for _ in range(size)])
        counts = np.array([rng.choice([0, 1, 2, 3, 17, 400])
                           for _ in range(size)], dtype=np.int64)
        if rng.random() < 0.5:
            w = rng.choice([1.0, 0.1, 0.35, 2.5])
            want = np.array([scalar_repeat(h, w, int(c))
                             for h, c in zip(heat, counts)])
        else:
            w = np.array([rng.choice([1.0, 0.1, 0.0, 3.7])
                          for _ in range(size)])
            want = np.array([scalar_repeat(h, wi, int(c))
                             for h, wi, c in zip(heat, w, counts)])
        got = heat.copy()
        repeat_add_vec(got, w, counts.copy())
        assert got.tobytes() == want.tobytes()


def test_repeat_add_vec_ties_and_absorption():
    base = np.array([3.0, 5.0, 1.0, 2.0 ** 52, 0.0, 7.0])
    u = np.array([math.ulp(v) for v in base])
    for mult in [0.25, 0.5, 1.5, 1000.5]:
        w = u * mult
        counts = np.full(base.shape, 3000, dtype=np.int64)
        want = np.array([scalar_repeat(h, wi, 3000)
                         for h, wi in zip(base, w)])
        got = base.copy()
        repeat_add_vec(got, w, counts)
        assert got.tobytes() == want.tobytes()
    # huge ratio guard path (w/ulp(heat) >= 2**62)
    heat = np.array([5e-324, 0.0, 1e-300])
    w = np.array([1.0, 2.5, 1e10])
    counts = np.array([5, 5, 5], dtype=np.int64)
    want = np.array([scalar_repeat(h, wi, 5) for h, wi in zip(heat, w)])
    got = heat.copy()
    repeat_add_vec(got, w, counts)
    assert got.tobytes() == want.tobytes()
