"""Interleaved memory sets (Pond-style striping)."""

import pytest

from repro import config
from repro.errors import ConfigError
from repro.sim.interconnect import AccessPath, Link
from repro.sim.interleave import InterleaveSet
from repro.sim.memory import MemoryDevice


def dram_path():
    return AccessPath(device=MemoryDevice(config.local_ddr5()))


def cxl_path():
    return AccessPath(device=MemoryDevice(config.cxl_expander_ddr5()),
                      links=(Link(config.cxl_port()),))


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            InterleaveSet(paths=[])

    def test_weight_arity(self):
        with pytest.raises(ConfigError):
            InterleaveSet(paths=[dram_path()], weights=[1, 2])

    def test_nonpositive_weight(self):
        with pytest.raises(ConfigError):
            InterleaveSet(paths=[dram_path()], weights=[0])

    def test_capacity_sums(self):
        iset = InterleaveSet(paths=[dram_path(), cxl_path()])
        assert iset.capacity_bytes == (
            config.local_ddr5().capacity_bytes
            + config.cxl_expander_ddr5().capacity_bytes
        )


class TestStriping:
    def test_round_robin(self):
        a, b = dram_path(), cxl_path()
        iset = InterleaveSet(paths=[a, b], granularity_bytes=256)
        assert iset.path_for(0) is a
        assert iset.path_for(256) is b
        assert iset.path_for(512) is a

    def test_weighted_stripe(self):
        a, b = dram_path(), cxl_path()
        iset = InterleaveSet(paths=[a, b], granularity_bytes=256,
                             weights=[3, 1])
        members = [iset.path_for(i * 256) for i in range(8)]
        assert members.count(a) == 6
        assert members.count(b) == 2

    def test_same_stripe_same_member(self):
        iset = InterleaveSet(paths=[dram_path(), cxl_path()],
                             granularity_bytes=256)
        assert iset.path_for(10) is iset.path_for(200)


class TestAggregatePerformance:
    def test_mean_latency_between_members(self):
        iset = InterleaveSet(paths=[dram_path(), cxl_path()])
        dram_lat = config.LOCAL_DRAM_LOAD_NS
        cxl_lat = config.CXL_DRAM_LOAD_NS
        assert dram_lat < iset.mean_read_latency_ns < cxl_lat
        assert iset.mean_read_latency_ns == pytest.approx(
            (dram_lat + cxl_lat) / 2
        )

    def test_weighting_dilutes_cxl_latency(self):
        balanced = InterleaveSet(paths=[dram_path(), cxl_path()])
        mostly_dram = InterleaveSet(paths=[dram_path(), cxl_path()],
                                    weights=[3, 1])
        assert (mostly_dram.mean_read_latency_ns
                < balanced.mean_read_latency_ns)

    def test_bandwidth_aggregates_over_equal_members(self):
        one = InterleaveSet(paths=[cxl_path()])
        four = InterleaveSet(paths=[cxl_path() for _ in range(4)])
        assert four.read_bandwidth == pytest.approx(
            4 * one.read_bandwidth
        )

    def test_unbalanced_stripe_limits_aggregate(self):
        # A 1:1 stripe over DRAM+CXL is limited by 2x the slower side.
        iset = InterleaveSet(paths=[dram_path(), cxl_path()])
        cxl_bw = cxl_path().read_bandwidth
        assert iset.read_bandwidth == pytest.approx(2 * cxl_bw)

    def test_large_read_uses_aggregate(self):
        single = cxl_path()
        iset = InterleaveSet(paths=[cxl_path() for _ in range(4)])
        size = 64 * 1024 * 1024
        assert iset.read_time(0, size) < single.read_time(size) / 2

    def test_small_read_pays_single_member(self):
        a, b = dram_path(), cxl_path()
        iset = InterleaveSet(paths=[a, b], granularity_bytes=256)
        assert iset.read_time(0, 64) == pytest.approx(
            config.LOCAL_DRAM_LOAD_NS, rel=0.1
        )
        assert iset.read_time(256, 64) == pytest.approx(
            config.CXL_DRAM_LOAD_NS, rel=0.1
        )

    def test_write_time_positive_and_ordered(self):
        iset = InterleaveSet(paths=[dram_path(), cxl_path()])
        small = iset.write_time(0, 64)
        large = iset.write_time(0, 1024 * 1024)
        assert 0 < small < large
