"""Shared channels and address spaces."""

import pytest

from repro import config
from repro.errors import AddressError, ConfigError
from repro.sim.address import AddressSpace, Region
from repro.sim.bandwidth import SharedChannel
from repro.sim.memory import MemoryDevice


class TestSharedChannel:
    def test_uncontended_transfer(self):
        channel = SharedChannel("test", 2.0)  # 2 B/ns
        done = channel.request(1000, now_ns=0.0)
        assert done == pytest.approx(500.0)

    def test_fifo_contention_serializes(self):
        channel = SharedChannel("test", 1.0)
        first = channel.request(100, now_ns=0.0)
        second = channel.request(100, now_ns=0.0)
        assert first == pytest.approx(100.0)
        assert second == pytest.approx(200.0)

    def test_idle_gap_not_charged(self):
        channel = SharedChannel("test", 1.0)
        channel.request(100, now_ns=0.0)
        done = channel.request(100, now_ns=1000.0)
        assert done == pytest.approx(1100.0)

    def test_queueing_delay(self):
        channel = SharedChannel("test", 1.0)
        channel.request(500, now_ns=0.0)
        assert channel.queueing_delay(100.0) == pytest.approx(400.0)
        assert channel.queueing_delay(600.0) == 0.0

    def test_accounting(self):
        channel = SharedChannel("test", 2.0)
        channel.request(100, 0.0)
        channel.request(300, 0.0)
        assert channel.bytes_transferred == 400
        assert channel.busy_time_ns == pytest.approx(200.0)

    def test_utilization(self):
        channel = SharedChannel("test", 1.0)
        channel.request(500, 0.0)
        assert channel.utilization(1000.0) == pytest.approx(0.5)
        assert channel.utilization(0.0) == 0.0

    def test_utilization_capped_at_one(self):
        channel = SharedChannel("test", 1.0)
        channel.request(5000, 0.0)
        assert channel.utilization(1000.0) == 1.0

    def test_reset(self):
        channel = SharedChannel("test", 1.0)
        channel.request(100, 0.0)
        channel.reset()
        assert channel.bytes_transferred == 0
        assert channel.request(10, 0.0) == pytest.approx(10.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigError):
            SharedChannel("bad", 0.0)


def _device(capacity=1024 * 1024) -> MemoryDevice:
    return MemoryDevice(config.local_ddr5(capacity_bytes=capacity))


class TestRegion:
    def test_contains_and_offset(self):
        region = Region(base=0x1000, size=0x1000, device=_device())
        assert region.contains(0x1000)
        assert region.contains(0x1FFF)
        assert not region.contains(0x2000)
        assert region.offset_of(0x1800) == 0x800

    def test_offset_outside_raises(self):
        region = Region(base=0, size=16, device=_device())
        with pytest.raises(AddressError):
            region.offset_of(16)

    def test_invalid_geometry(self):
        with pytest.raises(AddressError):
            Region(base=-1, size=10, device=_device())
        with pytest.raises(AddressError):
            Region(base=0, size=0, device=_device())


class TestAddressSpace:
    def test_map_device_appends(self):
        space = AddressSpace()
        d1, d2 = _device(4096), _device(8192)
        r1 = space.map_device(d1)
        r2 = space.map_device(d2)
        assert r1.base == 0
        assert r2.base == 4096
        assert space.top == 4096 + 8192

    def test_resolve(self):
        space = AddressSpace()
        d1, d2 = _device(4096), _device(8192)
        space.map_device(d1)
        space.map_device(d2)
        assert space.resolve(100).device is d1
        assert space.resolve(5000).device is d2

    def test_resolve_unmapped(self):
        space = AddressSpace()
        space.map_device(_device(4096))
        with pytest.raises(AddressError):
            space.resolve(4096)
        with pytest.raises(AddressError):
            AddressSpace().resolve(0)

    def test_overlap_rejected(self):
        space = AddressSpace()
        space.map_region(Region(base=0, size=100, device=_device()))
        with pytest.raises(AddressError):
            space.map_region(Region(base=50, size=100, device=_device()))

    def test_gap_then_resolve(self):
        space = AddressSpace()
        space.map_region(Region(base=1000, size=100, device=_device()))
        with pytest.raises(AddressError):
            space.resolve(500)
        assert space.resolve(1050).base == 1000

    def test_shared_flag_for_gfam(self):
        space = AddressSpace()
        region = space.map_device(_device(4096), label="gfam", shared=True)
        assert region.shared
        assert space.resolve(0).shared

    def test_mapped_bytes(self):
        space = AddressSpace()
        space.map_device(_device(4096))
        space.map_device(_device(8192))
        assert space.mapped_bytes == 12288
        assert len(space) == 2
