"""Trace sinks: null singleton, JSONL and Chrome exporters."""

import io
import json

import pytest

from repro.errors import SimulationError
from repro.sim.trace import (
    NULL_SINK,
    ChromeTraceSink,
    JsonLinesTraceSink,
    MemoryTraceSink,
    NullTraceSink,
    SpanRecord,
    sink_for_path,
)


class TestNullSink:
    def test_singleton(self):
        assert NullTraceSink() is NULL_SINK
        assert NullTraceSink() is NullTraceSink()

    def test_disabled(self):
        assert NULL_SINK.enabled is False

    def test_discards_without_validation(self):
        # The no-op fast path skips even the end>=start check.
        NULL_SINK.emit_span("x", "sim", 10.0, 5.0)
        NULL_SINK.emit_instant("x", "sim", 1.0)

    def test_no_instance_dict(self):
        with pytest.raises(AttributeError):
            NULL_SINK.arbitrary = 1


class TestValidation:
    def test_span_must_be_monotone(self):
        sink = MemoryTraceSink()
        with pytest.raises(SimulationError):
            sink.emit_span("bad", "sim", 10.0, 9.0)

    def test_zero_duration_span_ok(self):
        sink = MemoryTraceSink()
        sink.emit_span("instantish", "sim", 5.0, 5.0)
        assert sink.spans[0].duration_ns == 0.0


class TestMemorySink:
    def test_records_spans_and_instants(self):
        sink = MemoryTraceSink()
        sink.emit_span("fault", "pool", 100.0, 350.0, {"page": 7})
        sink.emit_instant("failed", "ras", 400.0)
        (span,) = sink.spans
        assert (span.name, span.cat) == ("fault", "pool")
        assert span.duration_ns == 250.0
        assert span.args == {"page": 7}
        assert sink.instants == [("failed", "ras", 400.0, None)]


class TestJsonLinesSink:
    def test_valid_jsonl(self):
        buf = io.StringIO()
        sink = JsonLinesTraceSink(buf)
        sink.emit_span("fault", "pool", 100.0, 350.0, {"page": 7})
        sink.emit_span("flush", "pool", 350.0, 500.0)
        sink.emit_instant("failed", "ras", 600.0, {"device": "cxl"})
        sink.close()
        lines = buf.getvalue().strip().splitlines()
        records = [json.loads(line) for line in lines]  # every line parses
        assert len(records) == 3
        assert records[0] == {
            "type": "span", "name": "fault", "cat": "pool",
            "ts_ns": 100.0, "dur_ns": 250.0, "args": {"page": 7},
        }
        assert records[1]["dur_ns"] == 150.0
        assert "args" not in records[1]
        assert records[2]["type"] == "instant"
        assert records[2]["ts_ns"] == 600.0

    def test_path_owned_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonLinesTraceSink(str(path))
        sink.emit_span("s", "sim", 0.0, 1.0)
        sink.close()
        assert json.loads(path.read_text())["name"] == "s"


class TestChromeSink:
    def test_valid_chrome_json(self, tmp_path):
        path = tmp_path / "trace.json"
        sink = ChromeTraceSink(str(path))
        sink.emit_span("fault", "pool", 2_000.0, 5_000.0, {"page": 3})
        sink.emit_span("run", "engine", 0.0, 9_000.0)
        sink.emit_instant("failed", "ras", 7_000.0)
        sink.close()
        trace = json.loads(path.read_text())
        assert trace["displayTimeUnit"] == "ns"
        events = trace["traceEvents"]
        spans = [e for e in events if e.get("ph") == "X"]
        # ns -> us conversion for the viewer.
        fault = next(e for e in spans if e["name"] == "fault")
        assert fault["ts"] == 2.0
        assert fault["dur"] == 3.0
        # One named track (thread_name metadata) per category.
        tracks = {
            e["args"]["name"]: e["tid"]
            for e in events if e.get("ph") == "M"
        }
        assert set(tracks) == {"pool", "engine", "ras"}
        assert fault["tid"] == tracks["pool"]
        instant = next(e for e in events if e.get("ph") == "i")
        assert instant["ts"] == 7.0

    def test_spans_monotone_in_virtual_time(self):
        sink = ChromeTraceSink(io.StringIO())
        clock = 0.0
        for i in range(20):
            start, clock = clock, clock + 10.0 * (i + 1)
            sink.emit_span(f"s{i}", "sim", start, clock)
        events = sink.trace_object()["traceEvents"]
        spans = [e for e in events if e.get("ph") == "X"]
        starts = [e["ts"] for e in spans]
        assert starts == sorted(starts)
        assert all(e["dur"] >= 0 for e in spans)
        # Each span begins where the previous one ended.
        for prev, cur in zip(spans, spans[1:]):
            assert cur["ts"] == pytest.approx(prev["ts"] + prev["dur"])


class TestSinkForPath:
    def test_extension_dispatch(self, tmp_path):
        assert isinstance(
            sink_for_path(str(tmp_path / "t.jsonl")), JsonLinesTraceSink
        )
        assert isinstance(
            sink_for_path(str(tmp_path / "t.json")), ChromeTraceSink
        )


class TestSpanRecord:
    def test_slots(self):
        span = SpanRecord("s", "sim", 0.0, 1.0)
        with pytest.raises(AttributeError):
            span.extra = 1
