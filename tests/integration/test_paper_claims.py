"""Integration tests: every headline claim of the paper, end to end.

Each test exercises the full stack (workload -> engine -> simulator)
and asserts the *shape* the paper reports — who wins, by roughly what
factor, where the crossovers fall.
"""

import pytest

from repro import config
from repro.core import (
    DbCostPolicy,
    ElasticCluster,
    OSPagingPolicy,
    ScaleOutConfig,
    ScaleOutEngine,
    ScaleUpEngine,
    SharedEngineConfig,
    SharedRackEngine,
    StaticPolicy,
)
from repro.core.ndp import NDPController
from repro.sim.interconnect import AccessPath, Link
from repro.sim.memory import MemoryDevice
from repro.sim.rdma import RDMAFabric
from repro.units import GIB
from repro.workloads import YCSBConfig, mixed_htap_trace, ycsb_trace
from repro.workloads.tpcc import TPCCLite


class TestSec24Characterization:
    """Latency and bandwidth anchors measured through the stack."""

    def test_cxl_tier_access_latency_ratio(self):
        engine = ScaleUpEngine.build(dram_pages=4, cxl_pages=4,
                                     with_storage=False)
        t_dram = engine.pool.access(0)
        engine.pool.access(1)
        engine.pool.migrate(1, 1)
        t_cxl = engine.pool.access(1)
        assert 2.0 < t_cxl / t_dram < 3.0  # 189/80 = 2.36

    def test_bandwidth_efficiency_gap(self):
        dram = MemoryDevice(config.local_ddr5())
        cxl = MemoryDevice(config.cxl_expander_ddr5())
        numa = MemoryDevice(config.remote_numa_ddr5())
        assert numa.spec.load_efficiency == pytest.approx(0.70)
        assert cxl.spec.load_efficiency == pytest.approx(0.46)
        assert dram.spec.effective_load_bandwidth > \
            cxl.spec.effective_load_bandwidth


class TestSec25CXLvsRDMA:
    def test_latency_advantage_at_least_2_5x(self):
        fabric = RDMAFabric()
        fabric.add_host("a")
        fabric.add_host("b")
        rdma = fabric.one_sided_read_time("a", "b", 64)
        path = AccessPath(
            device=MemoryDevice(config.cxl_expander_ddr5()),
            links=(Link(config.cxl_port()),
                   Link(config.cxl_switch_hop())),
        )
        cxl = path.read_time(64)
        assert rdma / cxl >= 2.5


class TestSec31MemoryExpansion:
    def test_db_tiering_beats_os_paging_beats_ssd(self):
        """Fig 2(a) economics: for a working set larger than DRAM,
        CXL tiering (either policy) beats paging to SSD, and DB
        placement beats OS placement."""
        warm = YCSBConfig(mix="C", num_pages=4_000, num_ops=15_000,
                          theta=0.99, think_ns=0, seed=10)
        cfg = YCSBConfig(mix="B", num_pages=4_000, num_ops=30_000,
                         theta=0.99, think_ns=0, seed=11)
        dram_pages = 800

        ssd_only = ScaleUpEngine.build(dram_pages=dram_pages)
        ssd_only.warm_with(ycsb_trace(warm))
        r_ssd = ssd_only.run(ycsb_trace(cfg))

        os_tier = ScaleUpEngine.build(
            dram_pages=dram_pages, cxl_pages=4_000,
            placement=OSPagingPolicy(), with_storage=False,
        )
        os_tier.warm_with(ycsb_trace(warm))
        r_os = os_tier.run(ycsb_trace(cfg))

        db_tier = ScaleUpEngine.build(
            dram_pages=dram_pages, cxl_pages=4_000,
            placement=DbCostPolicy(), with_storage=False,
        )
        db_tier.warm_with(ycsb_trace(warm))
        r_db = db_tier.run(ycsb_trace(cfg))

        assert r_ssd.total_ns > 2 * r_os.total_ns
        # The engine-side policy keeps more of the hot set in DRAM.
        assert r_db.tier_hit_rates[0] >= r_os.tier_hit_rates[0]
        assert r_db.total_ns <= 1.1 * r_os.total_ns

    def test_htap_isolation_protects_oltp(self):
        """Static OLTP-local/OLAP-CXL placement keeps OLTP hit rates
        when an analytical scan floods the pool."""
        oltp_pages = 1_000

        def run(placement):
            engine = ScaleUpEngine.build(
                dram_pages=1_200, cxl_pages=8_000,
                placement=placement, with_storage=False,
            )
            trace = mixed_htap_trace(
                oltp_pages=oltp_pages, olap_pages=6_000,
                oltp_ops=20_000, olap_repeats=1, seed=5,
            )
            engine.run(trace)
            # Where do the OLTP pages live at the end?
            in_dram = sum(
                1 for p in engine.pool.resident_in(0) if p < oltp_pages
            )
            return in_dram

        isolated = run(StaticPolicy(
            lambda p: 0 if p < oltp_pages else 1))
        lru_like = run(OSPagingPolicy(check_interval=10**9))
        assert isolated > lru_like


class TestSec32PoolingElasticity:
    def test_warm_spawn_and_cheap_migration(self):
        cluster = ElasticCluster(dataset_pages=300)
        cold, _ = cluster.spawn_engine("a", local_pages=64,
                                       slice_pages=512)
        cfg = YCSBConfig(mix="C", num_pages=300, num_ops=3_000,
                         think_ns=0, seed=2)
        r_cold = cold.run(ycsb_trace(cfg))
        slice_ = cluster.detach_engine(cold)
        warm, spawn_ns = cluster.spawn_engine("b", local_pages=64,
                                              warm_from=slice_)
        r_warm = warm.run(ycsb_trace(cfg))
        assert r_cold.total_ns > 3 * r_warm.total_ns
        assert spawn_ns < 1e6  # spawn in well under a millisecond
        assert (cluster.migration_time_ns(8 * GIB, pooled=False)
                > 100 * cluster.migration_time_ns(8 * GIB, pooled=True))


class TestSec33RackScaleSharing:
    def test_crossover_in_distributed_fraction(self):
        """Scale-out wins fully-partitionable loads; scale-up wins as
        cross-partition transactions appear."""
        ratios = {}
        for remote in (0.0, 0.3):
            txns = list(TPCCLite(num_warehouses=16,
                                 remote_probability=remote,
                                 seed=3).transactions(1_500))
            up = SharedRackEngine(
                SharedEngineConfig(num_hosts=4)).run(txns)
            out = ScaleOutEngine(
                ScaleOutConfig(num_nodes=4)).run(txns)
            ratios[remote] = up.throughput_tps / out.throughput_tps
        assert ratios[0.0] < 1.0
        assert ratios[0.3] > 1.0

    def test_coherence_traffic_btree_vs_hash_counter(self):
        """Sec 3.3's coherency-traffic question: a contended shared
        counter ping-pongs; a partitioned structure does not."""
        from repro.sim.coherence import CoherenceDirectory
        shared = CoherenceDirectory()
        agents = [shared.register_agent() for _ in range(4)]
        for i in range(200):
            shared.write(agents[i % 4], 0)  # one hot line
        partitioned = CoherenceDirectory()
        agents2 = [partitioned.register_agent() for _ in range(4)]
        for i in range(200):
            partitioned.write(agents2[i % 4], i % 4)  # per-agent lines
        assert shared.stats.invalidations_sent > \
            10 * max(1, partitioned.stats.invalidations_sent)


class TestSec4NearDataProcessing:
    def test_offload_selectivity_sweep_shape(self):
        device = MemoryDevice(config.cxl_expander_ddr5())
        path = AccessPath(device=device, links=(Link(config.cxl_port()),))
        controller = NDPController(path)
        speedups = []
        for selectivity in (0.001, 0.01, 0.1, 0.5, 1.0):
            host = controller.host_filter_time(50_000, selectivity)
            ndp = controller.offload_filter_time(50_000, selectivity)
            speedups.append(host.time_ns / ndp.time_ns)
        # Monotone non-increasing in selectivity; wins at the low end.
        assert speedups[0] > 1.2
        assert all(a >= b - 1e-9 for a, b in zip(speedups, speedups[1:]))


class TestSec26FaultTolerance:
    def test_ras_and_component_count_advantages(self):
        from repro.sim.events import Simulator
        from repro.sim.ras import (
            CXL_POOL_PATH,
            REMOTE_SERVER_PATH,
            FailureInjector,
            RASMonitor,
            TimeoutMonitor,
            path_failure_probability,
        )
        sim = Simulator()
        injector = FailureInjector(sim)
        ras, timeout = RASMonitor(), TimeoutMonitor()
        injector.attach(ras)
        injector.attach(timeout)
        device = MemoryDevice(config.cxl_expander_ddr5())
        injector.fail_at(device, 5e6)
        sim.run()
        assert (timeout.records[0].detection_delay_ns
                / ras.records[0].detection_delay_ns) > 1_000
        assert (path_failure_probability(REMOTE_SERVER_PATH)
                > path_failure_probability(CXL_POOL_PATH))
