"""A full-stack HTAP session: one engine, everything at once.

TPC-C-lite transactions, repeated TPC-H queries, and index lookups
share a single tiered engine with the cost-based placement policy —
the configuration Sec 3.1 proposes. The test asserts correctness
(query results unchanged by placement churn) and the structural
invariants of the pool after the storm.
"""

import pytest

from repro.core import DbCostPolicy, ScaleUpEngine
from repro.core.btree import TieredBTree
from repro.query import tpch
from repro.storage.disk import StorageDevice
from repro.storage.file import PageFile
from repro.workloads.tpcc import TPCCLite


@pytest.fixture(scope="module")
def session():
    pf = PageFile(StorageDevice())
    data = tpch.generate(pf, lineitem_rows=6_000, seed=4)
    tpcc = TPCCLite(num_warehouses=2, seed=4)
    # Make room for TPCC pages beyond the TPC-H tables.
    engine = ScaleUpEngine.build(
        dram_pages=1_500,
        cxl_pages=tpcc.total_pages + data.total_pages + 4_096,
        placement=DbCostPolicy(rebalance_interval=2_000),
        backing=pf,
    )
    index_base = 10_000_000
    index = TieredBTree.bulk_build(
        engine.pool,
        [(key, (key, key * 2.0)) for key in range(5_000)],
        first_page_id=index_base,
    )
    return engine, data, tpcc, index


class TestHTAPDay:
    def test_mixed_session_correctness(self, session):
        engine, data, tpcc, index = session
        q1_reference = sorted(tpch.q1(engine, data))
        q6_reference = sorted(tpch.q6(engine, data))

        for round_number in range(3):
            # OLTP burst.
            report = engine.run(tpcc.flat_trace(300),
                                label=f"oltp-{round_number}")
            assert report.ops > 0
            # Analytical queries return identical answers every time,
            # no matter what the placement policy moved meanwhile.
            assert sorted(tpch.q1(engine, data)) == q1_reference
            assert sorted(tpch.q6(engine, data)) == q6_reference
            # Point lookups through the index remain exact.
            for key in range(0, 5_000, 777):
                assert index.lookup(key) == (key, key * 2.0)

    def test_pool_invariants_after_the_storm(self, session):
        engine, _data, _tpcc, _index = session
        pool = engine.pool
        for tier_index, tier in enumerate(pool.tiers):
            assert pool.tier_residents(tier_index) <= tier.capacity_pages
            assert (len(list(pool.resident_in(tier_index)))
                    == pool.tier_residents(tier_index))
        all_pages = [
            page for i in range(len(pool.tiers))
            for page in pool.resident_in(i)
        ]
        assert len(all_pages) == len(set(all_pages))
        assert pool.stats.hit_rate > 0.5

    def test_hot_oltp_pages_gravitate_to_dram(self, session):
        engine, _data, tpcc, _index = session
        # Hammer a handful of hot warehouse pages, then rebalance.
        from repro.workloads.tpcc import RecordOp
        hot_pages = {
            tpcc.page_of(RecordOp("warehouse", w, 0)) for w in range(2)
        } | {
            tpcc.page_of(RecordOp("district", 0, d)) for d in range(10)
        }
        for _ in range(300):
            for page in hot_pages:
                engine.pool.access(page)
        engine.pool.placement.rebalance()
        in_dram = sum(
            1 for page in hot_pages if engine.pool.tier_of(page) == 0
        )
        assert in_dram >= len(hot_pages) * 0.8
