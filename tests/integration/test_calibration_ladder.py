"""The end-to-end latency ladder the whole reproduction rests on.

One test walks every rung: local DRAM < remote NUMA < direct CXL <
pooled CXL (switch) < GFAM (two switches) < RDMA < NVMe < HDD. If a
future calibration change breaks the ordering, everything downstream
(tiering wins, crossovers, NDP decisions) silently changes meaning —
this test makes that loud.
"""

import pytest

from repro import config
from repro.sim.interconnect import AccessPath, Link
from repro.sim.memory import MemoryDevice
from repro.sim.numa import NUMASystem
from repro.sim.rdma import RDMAFabric
from repro.sim.topology import RackTopology
from repro.storage.disk import StorageDevice
from repro.units import CACHE_LINE, PAGE_SIZE


def ladder() -> dict[str, float]:
    """64 B access latency at every level of the hierarchy."""
    system = NUMASystem()
    s0 = system.add_socket(MemoryDevice(config.local_ddr5(),
                                        name="s0"))
    s1 = system.add_socket(MemoryDevice(config.local_ddr5(),
                                        name="s1"))
    cxl = system.add_cxl_expander(
        MemoryDevice(config.cxl_expander_ddr5()), attached_to=s0)

    pooled = RackTopology.pooled(num_hosts=2)
    gfam = RackTopology.disaggregated(num_hosts=2)

    fabric = RDMAFabric()
    fabric.add_host("a")
    fabric.add_host("b")

    return {
        "local DRAM": system.path(s0, s0).read_latency_ns(),
        "remote NUMA": system.path(s0, s1).read_latency_ns(),
        "direct CXL": system.path(s0, cxl).read_latency_ns(),
        "pooled CXL": pooled.path(
            "host0", "pool0").read_latency_ns(),
        "GFAM": gfam.path("host0", "gfam0").read_latency_ns(),
        "RDMA": fabric.one_sided_read_time("a", "b", CACHE_LINE),
        "NVMe": StorageDevice(config.nvme_ssd()).read_time(PAGE_SIZE),
        "HDD": StorageDevice(config.hdd()).read_time(PAGE_SIZE),
    }


RUNGS = ["local DRAM", "remote NUMA", "direct CXL", "pooled CXL",
         "GFAM", "RDMA", "NVMe", "HDD"]


class TestLadder:
    def test_strictly_increasing(self):
        values = ladder()
        ordered = [values[name] for name in RUNGS]
        assert ordered == sorted(ordered)
        assert len(set(ordered)) == len(ordered)

    def test_absolute_anchors(self):
        values = ladder()
        assert values["local DRAM"] == pytest.approx(80.0)
        assert values["remote NUMA"] == pytest.approx(140.0)
        assert values["direct CXL"] == pytest.approx(189.0)
        assert 200.0 <= values["pooled CXL"] <= 400.0
        assert 200.0 <= values["GFAM"] <= 400.0

    def test_cxl_sits_in_the_memory_storage_gap(self):
        """The paper's core premise: CXL fills the gap between memory
        and everything network/storage shaped."""
        values = ladder()
        assert values["GFAM"] < values["RDMA"] / 2.5
        assert values["RDMA"] < values["NVMe"]
        assert values["NVMe"] < values["HDD"] / 100

    def test_every_rung_within_order_of_magnitude_of_neighbor(self):
        """Memory rungs are dense; the big cliffs are at RDMA and
        storage — exactly where the paper places them."""
        values = ladder()
        memory_rungs = RUNGS[:5]
        for a, b in zip(memory_rungs, memory_rungs[1:]):
            assert values[b] / values[a] < 2.0

    def test_paths_agree_with_direct_construction(self):
        """Topology-derived paths equal hand-built equivalents."""
        direct = AccessPath(
            device=MemoryDevice(config.cxl_expander_ddr5()),
            links=(Link(config.cxl_port()),),
        )
        rack = RackTopology.local_expansion()
        assert rack.path("host0", "cxl0").read_latency_ns() == \
            pytest.approx(direct.read_latency_ns())
