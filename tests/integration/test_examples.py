"""Every example script must run and tell its story."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXPECTED_MARKERS = {
    "quickstart.py": ["NVMe paging", "CXL + DB placement"],
    "htap_isolation.py": ["unified pool", "OLTP|OLAP split"],
    "elastic_cloud.py": ["Warm spawn", "cheaper"],
    "rack_scale_engine.py": ["scale-up", "scale-out", "winner"],
    "ndp_views.py": ["selectivity", "Active memory region"],
    "tiered_index.py": ["all-DRAM", "hybrid", "all-CXL"],
    "durability_failover.py": ["cxl-nvm", "balance after recovery: 100"],
    "composable_rack.py": ["fixed servers", "composable pool"],
}


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_MARKERS)


@pytest.mark.parametrize("script", sorted(EXPECTED_MARKERS))
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100
    for marker in EXPECTED_MARKERS[script]:
        assert marker in out, f"{script} output lacks {marker!r}"
