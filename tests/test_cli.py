"""The `python -m repro` experiment runner."""

import pytest

from repro.cli import EXPERIMENTS, find_benchmarks_dir, load_experiment, main


class TestDiscovery:
    def test_benchmarks_dir_found(self):
        bench_dir = find_benchmarks_dir()
        assert bench_dir is not None
        assert (bench_dir / "bench_e1_latency_bandwidth.py").is_file()

    def test_every_experiment_file_exists(self):
        bench_dir = find_benchmarks_dir()
        for filename in EXPERIMENTS.values():
            assert (bench_dir / filename).is_file(), filename

    def test_every_experiment_loads(self):
        bench_dir = find_benchmarks_dir()
        for exp_id in EXPERIMENTS:
            run = load_experiment(bench_dir, exp_id)
            assert callable(run)


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "e1" in out
        assert "f1" in out

    def test_unknown_experiment(self, capsys):
        assert main(["e99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_one(self, capsys):
        assert main(["e1"]) == 0
        out = capsys.readouterr().out
        assert "E1: CXL vs NUMA" in out
        assert "1.34x" in out

    @pytest.mark.parametrize("exp_id", ["e4", "f1"])
    def test_run_fast_experiments(self, exp_id, capsys):
        assert main([exp_id]) == 0
        assert "done in" in capsys.readouterr().out
