"""The `python -m repro` experiment runner and its discovery logic."""

import pytest

from repro.cli import (
    BENCH_DIR_ENV,
    EXPERIMENTS,
    experiment_description,
    find_benchmarks_dir,
    load_experiment,
    main,
)


class TestDiscovery:
    def test_benchmarks_dir_found(self):
        bench_dir = find_benchmarks_dir()
        assert bench_dir is not None
        assert (bench_dir / "bench_e1_latency_bandwidth.py").is_file()

    def test_every_experiment_file_exists(self):
        bench_dir = find_benchmarks_dir()
        for filename in EXPERIMENTS.values():
            assert (bench_dir / filename).is_file(), filename

    def test_every_experiment_loads(self):
        bench_dir = find_benchmarks_dir()
        for exp_id in EXPERIMENTS:
            run = load_experiment(bench_dir, exp_id)
            assert callable(run)

    def test_explicit_dir_wins(self):
        bench_dir = find_benchmarks_dir()
        assert find_benchmarks_dir(explicit=bench_dir) == bench_dir

    def test_explicit_dir_must_contain_benchmarks(self, tmp_path):
        assert find_benchmarks_dir(explicit=tmp_path) is None

    def test_env_var_fallback(self, monkeypatch):
        bench_dir = find_benchmarks_dir()
        monkeypatch.setenv(BENCH_DIR_ENV, str(bench_dir))
        assert find_benchmarks_dir() == bench_dir

    def test_env_var_bad_dir_does_not_fall_through(self, monkeypatch,
                                                   tmp_path):
        # An explicit-but-wrong location is an error the user should
        # see, not something to silently paper over.
        monkeypatch.setenv(BENCH_DIR_ENV, str(tmp_path))
        assert find_benchmarks_dir() is None

    def test_every_experiment_has_a_description(self):
        bench_dir = find_benchmarks_dir()
        for exp_id in EXPERIMENTS:
            description = experiment_description(bench_dir, exp_id)
            assert description, exp_id
            assert "\n" not in description


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "e1" in out
        assert "f1" in out

    def test_list_shows_descriptions(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "CXL vs NUMA latency and bandwidth" in out
        assert "CXL fabric vs RDMA networking" in out

    def test_unknown_experiment(self, capsys):
        assert main(["e99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_bad_bench_dir_is_usage_error(self, tmp_path, capsys):
        assert main(["e1", "--bench-dir", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "--bench-dir" in err
        assert "bench_e1_latency_bandwidth.py" in err

    def test_bad_env_bench_dir_names_the_variable(self, monkeypatch,
                                                  tmp_path, capsys):
        monkeypatch.setenv(BENCH_DIR_ENV, str(tmp_path))
        assert main(["e1"]) == 2
        assert BENCH_DIR_ENV in capsys.readouterr().err

    def test_explicit_bench_dir_runs(self, capsys):
        bench_dir = find_benchmarks_dir()
        assert main(["e1", "--bench-dir", str(bench_dir)]) == 0
        assert "E1: CXL vs NUMA" in capsys.readouterr().out

    def test_run_one(self, capsys):
        assert main(["e1"]) == 0
        out = capsys.readouterr().out
        assert "E1: CXL vs NUMA" in out
        assert "1.34x" in out

    @pytest.mark.parametrize("exp_id", ["e4", "f1"])
    def test_run_fast_experiments(self, exp_id, capsys):
        assert main([exp_id]) == 0
        assert "done in" in capsys.readouterr().out

    def test_bad_trace_out_dir_is_usage_error(self, tmp_path, capsys):
        missing = tmp_path / "no" / "such" / "dir" / "t.json"
        assert main(["e1", "--trace-out", str(missing)]) == 2
        assert "cannot write" in capsys.readouterr().err

    def test_sweep_dispatch(self, capsys):
        # `repro sweep` routes to the harness parser, whose usage
        # errors also exit 2.
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep"])  # missing SPEC argument
        assert excinfo.value.code == 2

    def test_console_entry_point(self):
        from repro.cli import console_main
        import unittest.mock as mock
        with mock.patch("repro.cli.main", return_value=0) as mocked:
            with pytest.raises(SystemExit) as excinfo:
                console_main()
        assert excinfo.value.code == 0
        assert mocked.called
