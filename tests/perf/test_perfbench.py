"""Tests for the ``repro perfbench`` subsystem.

Benchmarks run at a tiny scale here — the point is exercising the
harness (lane switching, digest equality, report shape, gating), not
measuring a speedup on a loaded CI machine.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.errors import ConfigError
from repro.perf import (
    MICROBENCHES,
    check_report,
    load_baseline,
    run_microbench,
    run_perfbench,
    write_report,
)
from repro.perf.cli import perfbench_main
from repro.perf.history import (
    TARGETS_SCHEMA,
    BenchTrend,
    PerfHistory,
    check_targets,
    collect_history,
    load_targets,
)
from repro.perf.runner import SCHEMA

SCALE = 0.02


def test_microbench_lanes_agree_on_simulation():
    """Every bench's fast and compat lanes must produce identical
    simulated results — the byte-identity contract, end to end."""
    for name in MICROBENCHES:
        _, fast_digest = run_microbench(name, fast=True, scale=SCALE)
        _, compat_digest = run_microbench(name, fast=False, scale=SCALE)
        assert fast_digest == compat_digest, name


def test_microbench_digest_deterministic():
    """The same bench at the same scale digests identically per run."""
    _, first = run_microbench("oltp", fast=True, scale=SCALE)
    _, second = run_microbench("oltp", fast=True, scale=SCALE)
    assert first == second


def test_unknown_bench_rejected():
    with pytest.raises(ConfigError):
        run_microbench("nope", fast=True)
    with pytest.raises(ConfigError):
        run_perfbench(["nope"], repeats=1, scale=SCALE)


def test_run_perfbench_report_shape():
    report = run_perfbench(["scan"], repeats=1, scale=SCALE)
    assert report["schema"] == SCHEMA
    assert report["scale"] == SCALE
    entry = report["benches"]["scan"]
    assert entry["lanes_equivalent"] is True
    assert entry["compat_wall_s"] > 0
    assert entry["fast_wall_s"] > 0
    assert entry["speedup"] > 0
    assert entry["sim_digest"] not in ("missing", "nondeterministic")


def _small_report():
    return run_perfbench(["scan"], repeats=1, scale=SCALE)


def test_check_report_passes_against_self():
    report = _small_report()
    assert check_report(report, baseline=copy.deepcopy(report),
                        tolerance=0.01) == []


def test_check_report_flags_lane_divergence():
    report = _small_report()
    report["benches"]["scan"]["lanes_equivalent"] = False
    failures = check_report(report, tolerance=0.01)
    assert any("byte-identity" in failure for failure in failures)


def test_check_report_flags_digest_drift():
    report = _small_report()
    baseline = copy.deepcopy(report)
    baseline["benches"]["scan"]["sim_digest"] = "deadbeef"
    failures = check_report(report, baseline=baseline, tolerance=0.01)
    assert any("digest" in failure for failure in failures)


def test_check_report_skips_digests_across_scales():
    report = _small_report()
    baseline = copy.deepcopy(report)
    baseline["scale"] = 1.0
    baseline["benches"]["scan"]["sim_digest"] = "deadbeef"
    assert check_report(report, baseline=baseline, tolerance=0.01) == []


def test_check_report_flags_slow_fast_lane():
    report = _small_report()
    report["benches"]["scan"]["speedup"] = 0.01
    failures = check_report(report, tolerance=1.0)
    assert any("below floor" in failure for failure in failures)


def test_write_and_load_baseline_roundtrip(tmp_path):
    report = _small_report()
    path = write_report(report, tmp_path / "bench" / "BENCH.json")
    assert json.loads(path.read_text()) == json.loads(
        json.dumps(report, sort_keys=True)
    )
    assert load_baseline(path)["schema"] == SCHEMA


def test_load_baseline_rejects_missing_and_bad_schema(tmp_path):
    with pytest.raises(ConfigError):
        load_baseline(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "other/v0"}))
    with pytest.raises(ConfigError):
        load_baseline(bad)


def _history(points_by_bench, pr_numbers=(7, 8)):
    trends = tuple(
        BenchTrend(name=name, points=tuple(points))
        for name, points in points_by_bench.items()
    )
    return PerfHistory(pr_numbers=tuple(pr_numbers), trends=trends)


class TestTargetsGate:
    """The --history trajectory gate: floors, geomean, ratchet."""

    def test_passes_when_targets_met(self):
        history = _history({
            "scan": [(7, 4.0), (8, 11.0)],
            "oltp": [(7, 2.0), (8, 6.0)],
        })
        targets = {
            "per_bench_floor": {"scan": 10.0, "oltp": 5.0},
            "geomean_min": 6.0,
            "regression_factor": 0.75,
        }
        assert check_targets(history, targets) == []

    def test_flags_floor_breach(self):
        history = _history({"scan": [(8, 9.5)]}, pr_numbers=(8,))
        failures = check_targets(
            history, {"per_bench_floor": {"scan": 10.0}})
        assert any("target floor" in f for f in failures)

    def test_flags_geomean_breach(self):
        history = _history({
            "scan": [(8, 2.0)], "oltp": [(8, 2.0)],
        }, pr_numbers=(8,))
        failures = check_targets(history, {"geomean_min": 3.0})
        assert any("geomean" in f for f in failures)

    def test_flags_regression_ratchet(self):
        history = _history({"scan": [(7, 10.0), (8, 7.0)]})
        failures = check_targets(
            history, {"regression_factor": 0.75})
        assert any("regression factor" in f for f in failures)
        # 7.5 is exactly prev * factor: allowed.
        ok = _history({"scan": [(7, 10.0), (8, 7.5)]})
        assert check_targets(ok, {"regression_factor": 0.75}) == []

    def test_ignores_benches_dropped_from_latest_baseline(self):
        # A bench last recorded by an older PR is outside the latest
        # recording set; its stale number must not trip any rule.
        history = _history({
            "scan": [(7, 4.0), (8, 11.0)],
            "retired": [(7, 1.2)],
        })
        targets = {
            "per_bench_floor": {"scan": 10.0, "retired": 50.0},
            "geomean_min": 10.0,
            "regression_factor": 0.75,
        }
        assert check_targets(history, targets) == []

    def test_load_targets_absent_is_none(self, tmp_path):
        assert load_targets(tmp_path / "TARGETS.json") is None

    def test_load_targets_broken_raises(self, tmp_path):
        bad = tmp_path / "TARGETS.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigError):
            load_targets(bad)
        bad.write_text(json.dumps({"schema": "other/v0"}))
        with pytest.raises(ConfigError):
            load_targets(bad)

    def test_committed_targets_pass_committed_history(self):
        # The actual repo state: the committed baselines must satisfy
        # the committed targets, or CI is red on merge.
        history = collect_history("results/bench")
        targets = load_targets("results/bench/TARGETS.json")
        assert targets is not None
        assert targets["schema"] == TARGETS_SCHEMA
        assert check_targets(history, targets) == []

    def test_cli_history_gate(self, tmp_path, capsys):
        bench_dir = tmp_path / "bench"
        bench_dir.mkdir()
        report = _small_report()
        report["benches"]["scan"]["speedup"] = 11.0
        (bench_dir / "BENCH_PR8.json").write_text(json.dumps(report))
        (bench_dir / "TARGETS.json").write_text(json.dumps({
            "schema": TARGETS_SCHEMA,
            "per_bench_floor": {"scan": 10.0},
        }))
        assert perfbench_main(
            ["--history", "--bench-dir", str(bench_dir)]) == 0
        assert "perf targets gate: PASS" in capsys.readouterr().err
        report["benches"]["scan"]["speedup"] = 1.0
        (bench_dir / "BENCH_PR8.json").write_text(json.dumps(report))
        assert perfbench_main(
            ["--history", "--bench-dir", str(bench_dir)]) == 1
        assert "PERF TARGET FAIL" in capsys.readouterr().err

    def test_cli_explicit_targets_must_exist(self, tmp_path):
        bench_dir = tmp_path / "bench"
        bench_dir.mkdir()
        (bench_dir / "BENCH_PR8.json").write_text(
            json.dumps(_small_report()))
        assert perfbench_main([
            "--history", "--bench-dir", str(bench_dir),
            "--targets", str(tmp_path / "nope.json"),
        ]) == 2


def test_cli_writes_report_and_checks(tmp_path, capsys):
    out = tmp_path / "BENCH.json"
    code = perfbench_main([
        "--benches", "scan", "--repeats", "1",
        "--scale", str(SCALE), "--out", str(out), "--quiet",
    ])
    assert code == 0
    assert out.exists()
    code = perfbench_main([
        "--benches", "scan", "--repeats", "1",
        "--scale", str(SCALE), "--check", "--baseline", str(out),
        "--tolerance", "0.01", "--quiet",
    ])
    assert code == 0
    captured = capsys.readouterr()
    assert "scan" in captured.out


def test_cli_profile_writes_reports(tmp_path, capsys):
    out_dir = tmp_path / "profiles"
    code = perfbench_main([
        "--profile", "--benches", "scan,oltp-contended",
        "--scale", str(SCALE), "--profile-dir", str(out_dir),
        "--profile-top", "5", "--quiet",
    ])
    assert code == 0
    for name in ("scan", "oltp-contended"):
        path = out_dir / f"profile-{name}.txt"
        assert path.exists()
        text = path.read_text()
        assert "sim_digest" in text
        assert "cumulative" in text and "tottime" in text
    assert "profile written" in capsys.readouterr().out


def test_cli_profile_unknown_bench_rejected(tmp_path):
    assert perfbench_main([
        "--profile", "--benches", "nope",
        "--profile-dir", str(tmp_path),
    ]) == 2
