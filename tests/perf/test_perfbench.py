"""Tests for the ``repro perfbench`` subsystem.

Benchmarks run at a tiny scale here — the point is exercising the
harness (lane switching, digest equality, report shape, gating), not
measuring a speedup on a loaded CI machine.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.errors import ConfigError
from repro.perf import (
    MICROBENCHES,
    check_report,
    load_baseline,
    run_microbench,
    run_perfbench,
    write_report,
)
from repro.perf.cli import perfbench_main
from repro.perf.runner import SCHEMA

SCALE = 0.02


def test_microbench_lanes_agree_on_simulation():
    """Every bench's fast and compat lanes must produce identical
    simulated results — the byte-identity contract, end to end."""
    for name in MICROBENCHES:
        _, fast_digest = run_microbench(name, fast=True, scale=SCALE)
        _, compat_digest = run_microbench(name, fast=False, scale=SCALE)
        assert fast_digest == compat_digest, name


def test_microbench_digest_deterministic():
    """The same bench at the same scale digests identically per run."""
    _, first = run_microbench("oltp", fast=True, scale=SCALE)
    _, second = run_microbench("oltp", fast=True, scale=SCALE)
    assert first == second


def test_unknown_bench_rejected():
    with pytest.raises(ConfigError):
        run_microbench("nope", fast=True)
    with pytest.raises(ConfigError):
        run_perfbench(["nope"], repeats=1, scale=SCALE)


def test_run_perfbench_report_shape():
    report = run_perfbench(["scan"], repeats=1, scale=SCALE)
    assert report["schema"] == SCHEMA
    assert report["scale"] == SCALE
    entry = report["benches"]["scan"]
    assert entry["lanes_equivalent"] is True
    assert entry["compat_wall_s"] > 0
    assert entry["fast_wall_s"] > 0
    assert entry["speedup"] > 0
    assert entry["sim_digest"] not in ("missing", "nondeterministic")


def _small_report():
    return run_perfbench(["scan"], repeats=1, scale=SCALE)


def test_check_report_passes_against_self():
    report = _small_report()
    assert check_report(report, baseline=copy.deepcopy(report),
                        tolerance=0.01) == []


def test_check_report_flags_lane_divergence():
    report = _small_report()
    report["benches"]["scan"]["lanes_equivalent"] = False
    failures = check_report(report, tolerance=0.01)
    assert any("byte-identity" in failure for failure in failures)


def test_check_report_flags_digest_drift():
    report = _small_report()
    baseline = copy.deepcopy(report)
    baseline["benches"]["scan"]["sim_digest"] = "deadbeef"
    failures = check_report(report, baseline=baseline, tolerance=0.01)
    assert any("digest" in failure for failure in failures)


def test_check_report_skips_digests_across_scales():
    report = _small_report()
    baseline = copy.deepcopy(report)
    baseline["scale"] = 1.0
    baseline["benches"]["scan"]["sim_digest"] = "deadbeef"
    assert check_report(report, baseline=baseline, tolerance=0.01) == []


def test_check_report_flags_slow_fast_lane():
    report = _small_report()
    report["benches"]["scan"]["speedup"] = 0.01
    failures = check_report(report, tolerance=1.0)
    assert any("below floor" in failure for failure in failures)


def test_write_and_load_baseline_roundtrip(tmp_path):
    report = _small_report()
    path = write_report(report, tmp_path / "bench" / "BENCH.json")
    assert json.loads(path.read_text()) == json.loads(
        json.dumps(report, sort_keys=True)
    )
    assert load_baseline(path)["schema"] == SCHEMA


def test_load_baseline_rejects_missing_and_bad_schema(tmp_path):
    with pytest.raises(ConfigError):
        load_baseline(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "other/v0"}))
    with pytest.raises(ConfigError):
        load_baseline(bad)


def test_cli_writes_report_and_checks(tmp_path, capsys):
    out = tmp_path / "BENCH.json"
    code = perfbench_main([
        "--benches", "scan", "--repeats", "1",
        "--scale", str(SCALE), "--out", str(out), "--quiet",
    ])
    assert code == 0
    assert out.exists()
    code = perfbench_main([
        "--benches", "scan", "--repeats", "1",
        "--scale", str(SCALE), "--check", "--baseline", str(out),
        "--tolerance", "0.01", "--quiet",
    ])
    assert code == 0
    captured = capsys.readouterr()
    assert "scan" in captured.out
