"""Parallel sweep execution: determinism, isolation, caching."""

from repro.harness.executor import run_sweep
from repro.harness.scenario import Scenario, Sweep
from repro.harness.store import ResultStore


def echo_sweep(values=(1, 2, 3, 4), name="echo"):
    return Sweep(
        name=name,
        base=Scenario(experiment="debug.echo", workload={"x": 0}, seed=5),
        axes={"workload.x": tuple(values)},
    )


class TestRunSweep:
    def test_results_ordered_and_complete(self):
        report = run_sweep(echo_sweep(), jobs=2, timeout_s=60)
        assert report.ok
        assert [c.index for c in report.cells] == [0, 1, 2, 3]
        assert [c.result["workload"]["x"] for c in report.cells] == \
            [1, 2, 3, 4]
        assert report.counts == {"ok": 4}

    def test_parallel_matches_serial_byte_identical(self):
        serial = run_sweep(echo_sweep(), jobs=1, timeout_s=60)
        parallel = run_sweep(echo_sweep(), jobs=4, timeout_s=60)
        assert serial.results_canonical() == parallel.results_canonical()

    def test_derived_seeds_survive_fanout(self):
        report = run_sweep(echo_sweep(), jobs=3, timeout_s=60)
        seeds = [c.result["seed"] for c in report.cells]
        expected = [c.scenario.seed for c in echo_sweep().cells()]
        assert seeds == expected
        assert len(set(seeds)) == len(seeds)

    def test_exception_marks_cell_failed_not_sweep(self):
        sweep = Sweep(
            name="mixed",
            base=Scenario(experiment="debug.echo"),
            axes={"experiment": ("debug.echo", "debug.fail",
                                 "debug.echo")},
        )
        report = run_sweep(sweep, jobs=2, timeout_s=60)
        statuses = {c.assignments["experiment"]: c.status
                    for c in report.cells}
        assert statuses["debug.fail"] == "failed"
        assert statuses["debug.echo"] == "ok"
        assert not report.ok
        failed = next(c for c in report.cells if c.status == "failed")
        assert "deliberate harness test failure" in failed.error

    def test_worker_death_is_isolated(self):
        sweep = Sweep(
            name="crashy",
            base=Scenario(experiment="debug.echo"),
            axes={"experiment": ("debug.crash", "debug.echo")},
        )
        report = run_sweep(sweep, jobs=2, timeout_s=60)
        by_exp = {c.assignments["experiment"]: c for c in report.cells}
        assert by_exp["debug.crash"].status == "failed"
        assert by_exp["debug.echo"].status == "ok"

    def test_timeout_terminates_cell(self):
        sweep = Sweep(
            name="slow",
            base=Scenario(experiment="debug.sleep",
                          workload={"seconds": 30.0}),
            axes={"workload.i": (1,)},
        )
        report = run_sweep(sweep, jobs=1, timeout_s=0.3)
        assert report.cells[0].status == "timeout"
        assert "wall-time" in report.cells[0].error

    def test_unknown_experiment_fails_cell(self):
        sweep = Sweep(
            name="unknown",
            base=Scenario(experiment="no.such.kernel"),
            axes={"workload.i": (1,)},
        )
        report = run_sweep(sweep, jobs=1, timeout_s=60)
        assert report.cells[0].status == "failed"
        assert "unknown experiment" in report.cells[0].error

    def test_cache_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        first = run_sweep(echo_sweep(), jobs=2, store=store)
        assert first.simulated == 4 and first.cached == 0
        second = run_sweep(echo_sweep(), jobs=2, store=store)
        assert second.simulated == 0 and second.cached == 4
        assert second.counts == {"cached": 4}
        assert first.results_canonical() == second.results_canonical()

    def test_no_cache_resimulates_but_still_stores(self, tmp_path):
        store = ResultStore(tmp_path)
        run_sweep(echo_sweep(), jobs=1, store=store)
        again = run_sweep(echo_sweep(), jobs=1, store=store,
                          use_cache=False)
        assert again.cached == 0 and again.simulated == 4
        assert len(store) == 4

    def test_failed_cells_are_not_cached(self, tmp_path):
        store = ResultStore(tmp_path)
        sweep = Sweep(name="f", base=Scenario(experiment="debug.fail"),
                      axes={"workload.i": (1,)})
        run_sweep(sweep, jobs=1, store=store)
        assert len(store) == 0
        report = run_sweep(sweep, jobs=1, store=store)
        assert report.cells[0].status == "failed"

    def test_report_dict_is_json_ready(self):
        import json
        report = run_sweep(echo_sweep(values=(1,)), jobs=1)
        data = json.loads(json.dumps(report.to_dict()))
        assert data["name"] == "echo"
        assert data["counts"] == {"ok": 1}
        assert data["cells"][0]["cell_id"] == "workload.x=1"
