"""Baseline shape gating."""

import json

import pytest

from repro.errors import ConfigError
from repro.harness.executor import CellResult
from repro.harness.gate import check_gate, load_baseline


def cell(index, assignments, result, status="ok"):
    return CellResult(
        index=index,
        cell_id=",".join(f"{k}={v}" for k, v in assignments.items()),
        assignments=assignments,
        scenario={},
        status=status,
        result=result,
    )


def line_cells():
    """An E7-shaped sweep line with a crossover at 0.1."""
    points = [
        (0.0, 1000.0, 2100.0),
        (0.05, 1080.0, 1370.0),
        (0.1, 1110.0, 1100.0),
        (0.3, 1060.0, 670.0),
    ]
    return [
        cell(i, {"workload.remote_fraction": rf},
             {"scale_up_tps": up, "scale_out_tps": out,
              "ratio": up / out})
        for i, (rf, up, out) in enumerate(points)
    ]


def run(cells, *invariants):
    return check_gate(cells, {"name": "t", "invariants": list(invariants)})


class TestMetricBound:
    def test_pass_and_fail(self):
        cells = line_cells()
        ok = run(cells, {"kind": "metric_bound",
                         "where": {"workload.remote_fraction": 0.3},
                         "metric": "ratio", "min": 1.2})
        assert ok.ok
        bad = run(cells, {"kind": "metric_bound",
                          "where": {"workload.remote_fraction": 0.3},
                          "metric": "ratio", "max": 1.2})
        assert not bad.ok
        assert "band" in bad.failures[0].message

    def test_tolerance_widens_band(self):
        cells = [cell(0, {"a": 1}, {"m": 1.10})]
        tight = run(cells, {"kind": "metric_bound", "where": {"a": 1},
                            "metric": "m", "max": 1.0})
        assert not tight.ok
        loose = run(cells, {"kind": "metric_bound", "where": {"a": 1},
                            "metric": "m", "max": 1.0,
                            "tolerance": 0.15})
        assert loose.ok

    def test_missing_metric_fails_closed(self):
        report = run(line_cells(), {"kind": "metric_bound",
                                    "where": {"workload.remote_fraction": 0.3},
                                    "metric": "nope", "min": 0})
        assert not report.ok
        assert "no metric" in report.failures[0].message

    def test_unmatched_where_fails_closed(self):
        report = run(line_cells(), {"kind": "metric_bound",
                                    "where": {"workload.remote_fraction": 9},
                                    "metric": "ratio", "min": 0})
        assert not report.ok
        assert "no successful cell" in report.failures[0].message

    def test_ambiguous_where_fails_closed(self):
        cells = [cell(0, {"a": 1, "b": 1}, {"m": 1.0}),
                 cell(1, {"a": 1, "b": 2}, {"m": 2.0})]
        report = run(cells, {"kind": "metric_bound", "where": {"a": 1},
                             "metric": "m", "min": 0})
        assert not report.ok
        assert "ambiguous" in report.failures[0].message

    def test_failed_cells_invisible_to_selectors(self):
        cells = [cell(0, {"a": 1}, None, status="failed")]
        report = run(cells, {"kind": "metric_bound", "where": {"a": 1},
                             "metric": "m", "min": 0})
        assert not report.ok


class TestRatioBound:
    def test_pass_and_fail(self):
        inv = {
            "kind": "ratio_bound",
            "numerator": {"where": {"workload.remote_fraction": 0.3},
                          "metric": "scale_up_tps"},
            "denominator": {"where": {"workload.remote_fraction": 0.3},
                            "metric": "scale_out_tps"},
            "min": 1.2, "max": 2.0,
        }
        assert run(line_cells(), inv).ok
        assert not run(line_cells(), {**inv, "min": 1.9}).ok

    def test_zero_denominator_fails_closed(self):
        cells = [cell(0, {"a": 1}, {"n": 1.0, "d": 0.0})]
        report = run(cells, {
            "kind": "ratio_bound",
            "numerator": {"where": {"a": 1}, "metric": "n"},
            "denominator": {"where": {"a": 1}, "metric": "d"},
            "min": 0,
        })
        assert not report.ok
        assert "zero" in report.failures[0].message


class TestWinner:
    def test_winner_with_margin(self):
        inv = {
            "kind": "winner",
            "larger": {"where": {"workload.remote_fraction": 0.0},
                       "metric": "scale_out_tps"},
            "smaller": {"where": {"workload.remote_fraction": 0.0},
                        "metric": "scale_up_tps"},
            "margin": 2.0,
        }
        assert run(line_cells(), inv).ok
        assert not run(line_cells(), {**inv, "margin": 2.5}).ok

    def test_upset_detected(self):
        inv = {
            "kind": "winner",
            "larger": {"where": {"workload.remote_fraction": 0.0},
                       "metric": "scale_up_tps"},
            "smaller": {"where": {"workload.remote_fraction": 0.0},
                        "metric": "scale_out_tps"},
        }
        assert not run(line_cells(), inv).ok


class TestCrossover:
    def inv(self, between):
        return {
            "kind": "crossover",
            "axis": "workload.remote_fraction",
            "metric": "scale_up_tps",
            "crosses": "scale_out_tps",
            "between": between,
        }

    def test_crossover_within_band(self):
        assert run(line_cells(), self.inv([0.05, 0.15])).ok

    def test_crossover_moved_is_a_regression(self):
        report = run(line_cells(), self.inv([0.15, 0.3]))
        assert not report.ok
        assert "overtakes" in report.failures[0].message

    def test_no_crossover_fails(self):
        cells = [
            cell(i, {"x": float(i)}, {"a": 1.0, "b": 2.0})
            for i in range(3)
        ]
        report = run(cells, {"kind": "crossover", "axis": "x",
                             "metric": "a", "crosses": "b",
                             "between": [0, 2]})
        assert not report.ok
        assert "never overtakes" in report.failures[0].message

    def test_too_few_points_fails_closed(self):
        report = run(line_cells()[:1], self.inv([0.0, 1.0]))
        assert not report.ok


class TestGatePlumbing:
    def test_unknown_kind_fails_closed(self):
        report = run(line_cells(), {"kind": "vibes"})
        assert not report.ok
        assert "unknown invariant kind" in report.failures[0].message

    def test_empty_baseline_fails_closed(self):
        report = check_gate(line_cells(), {"invariants": []})
        assert not report.ok

    def test_summary_counts(self):
        report = run(
            line_cells(),
            {"kind": "metric_bound",
             "where": {"workload.remote_fraction": 0.3},
             "metric": "ratio", "min": 1.2},
            {"kind": "vibes"},
        )
        assert "1/2 invariants hold" in report.summary()
        assert "FAIL" in report.summary()

    def test_load_baseline_errors(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            load_baseline(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        with pytest.raises(ConfigError, match="invariants"):
            load_baseline(bad)

    def test_shipped_baselines_parse(self):
        from repro.cli import find_benchmarks_dir
        root = find_benchmarks_dir().parent
        baselines = sorted((root / "results" / "baselines").glob("*.json"))
        assert len(baselines) >= 4
        for path in baselines:
            data = load_baseline(path)
            assert data["invariants"], path.name
            known = {"metric_bound", "ratio_bound", "winner", "crossover"}
            for inv in data["invariants"]:
                assert inv["kind"] in known, (path.name, inv)

    def test_baseline_json_round_trip(self, tmp_path):
        baseline = {"name": "x", "invariants": [
            {"kind": "metric_bound", "where": {"a": 1}, "metric": "m",
             "min": 0.5},
        ]}
        path = tmp_path / "b.json"
        path.write_text(json.dumps(baseline))
        assert load_baseline(path) == baseline
