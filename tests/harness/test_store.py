"""The content-addressed result store."""

from repro.harness.scenario import HARNESS_VERSION, Scenario
from repro.harness.store import ResultStore


def scenario(**overrides):
    base = dict(experiment="debug.echo", workload={"x": 1}, seed=3)
    base.update(overrides)
    return Scenario(**base)


class TestResultStore:
    def test_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        s = scenario()
        assert store.get(s) is None
        store.put(s, {"metric": 1.5})
        assert store.get(s) == {"metric": 1.5}
        assert len(store) == 1

    def test_keys_are_scenario_specific(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(scenario(), {"metric": 1.0})
        assert store.get(scenario(seed=4)) is None
        assert store.get(scenario(workload={"x": 2})) is None

    def test_put_is_idempotent_and_byte_stable(self, tmp_path):
        store = ResultStore(tmp_path)
        first = store.put(scenario(), {"metric": 1.0}).read_bytes()
        second = store.put(scenario(), {"metric": 1.0}).read_bytes()
        assert first == second
        assert len(store) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(scenario(), {"metric": 1.0})
        path.write_text("{torn write")
        assert store.get(scenario()) is None

    def test_version_mismatch_is_a_miss(self, tmp_path):
        import json
        store = ResultStore(tmp_path)
        path = store.put(scenario(), {"metric": 1.0})
        data = json.loads(path.read_text())
        data["harness_version"] = HARNESS_VERSION + 1
        path.write_text(json.dumps(data))
        assert store.get(scenario()) is None

    def test_empty_store_len(self, tmp_path):
        assert len(ResultStore(tmp_path / "absent")) == 0
