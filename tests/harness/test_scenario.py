"""Scenario/Sweep specs: serialization, expansion, seeds, hashing."""

import json

import pytest

from repro.errors import ConfigError
from repro.harness.scenario import (
    Scenario,
    Sweep,
    cell_id_for,
    derive_seed,
    dumps_toml,
    load_sweep,
    loads_toml,
    save_sweep,
)


def scenario(**overrides):
    base = dict(
        experiment="debug.echo",
        topology={"nodes": 4},
        workload={"theta": 0.99, "mix": "B"},
        policy={"kind": "os_paging"},
        seed=7,
    )
    base.update(overrides)
    return Scenario(**base)


class TestScenario:
    def test_json_round_trip(self):
        s = scenario()
        assert Scenario.from_json(s.to_json()) == s

    def test_toml_round_trip(self):
        pytest.importorskip("tomllib")
        s = scenario()
        assert Scenario.from_toml(s.to_toml()) == s

    def test_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="unknown scenario keys"):
            Scenario.from_dict({"experiment": "x", "bogus": 1})

    def test_requires_experiment(self):
        with pytest.raises(ConfigError, match="experiment"):
            Scenario(experiment="")

    def test_content_hash_stable_and_sensitive(self):
        assert scenario().content_hash() == scenario().content_hash()
        changed = scenario(workload={"theta": 0.5, "mix": "B"})
        assert changed.content_hash() != scenario().content_hash()
        assert scenario(seed=8).content_hash() != scenario().content_hash()

    def test_with_params_dotted(self):
        s = scenario().with_params({
            "workload.theta": 0.5,
            "topology.nodes": 8,
            "policy.tier.kind": "hbm",
            "seed": 99,
        })
        assert s.workload["theta"] == 0.5
        assert s.workload["mix"] == "B"          # untouched siblings
        assert s.topology["nodes"] == 8
        assert s.policy["tier"] == {"kind": "hbm"}
        assert s.seed == 99
        assert scenario().workload["theta"] == 0.99  # original intact

    def test_with_params_rejects_bad_paths(self):
        with pytest.raises(ConfigError, match="outside the scenario"):
            scenario().with_params({"bogus.x": 1})
        with pytest.raises(ConfigError, match="inside"):
            scenario().with_params({"workload": 1})


class TestSweep:
    def sweep(self, **overrides):
        kwargs = dict(
            name="grid",
            base=scenario(),
            axes={
                "workload.theta": (0.5, 0.99),
                "policy.kind": ("all_dram", "os_paging", "static"),
            },
        )
        kwargs.update(overrides)
        return Sweep(**kwargs)

    def test_expansion_is_cartesian_and_ordered(self):
        cells = self.sweep().cells()
        assert len(cells) == 6 == len(self.sweep())
        assert [c.index for c in cells] == list(range(6))
        # First axis varies slowest (spec order).
        assert [c.assignments["workload.theta"] for c in cells] == \
            [0.5, 0.5, 0.5, 0.99, 0.99, 0.99]

    def test_cell_ids_are_stable_and_unique(self):
        cells = self.sweep().cells()
        ids = [c.cell_id for c in cells]
        assert len(set(ids)) == len(ids)
        assert ids == [c.cell_id for c in self.sweep().cells()]
        assert cell_id_for({"b": 1, "a": "x"}) == 'a="x",b=1'

    def test_per_cell_seeds_deterministic_and_distinct(self):
        cells = self.sweep().cells()
        seeds = [c.scenario.seed for c in cells]
        assert len(set(seeds)) == len(seeds)
        assert seeds == [c.scenario.seed for c in self.sweep().cells()]
        assert seeds[0] == derive_seed(7, cells[0].cell_id)

    def test_shared_seed_mode(self):
        cells = self.sweep(per_cell_seeds=False).cells()
        assert {c.scenario.seed for c in cells} == {7}

    def test_seed_axis_wins_over_derivation(self):
        sweep = self.sweep(axes={"seed": (1, 2)})
        assert [c.scenario.seed for c in sweep.cells()] == [1, 2]

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigError, match="non-empty"):
            self.sweep(axes={"workload.theta": []})

    def test_dict_round_trip(self):
        sweep = self.sweep()
        again = Sweep.from_dict(sweep.to_dict())
        assert again.to_dict() == sweep.to_dict()
        assert [c.cell_id for c in again.cells()] == \
            [c.cell_id for c in sweep.cells()]


class TestSpecFiles:
    def test_json_save_load(self, tmp_path):
        sweep = Sweep(name="s", base=scenario(),
                      axes={"workload.theta": (0.5,)}, gate="b.json")
        path = save_sweep(sweep, tmp_path / "s.json")
        loaded = load_sweep(path)
        assert loaded.to_dict() == sweep.to_dict()
        assert loaded.gate == "b.json"

    def test_toml_save_load(self, tmp_path):
        pytest.importorskip("tomllib")
        sweep = Sweep(name="s", base=scenario(),
                      axes={"workload.theta": (0.5, 0.99)})
        path = save_sweep(sweep, tmp_path / "s.toml")
        assert load_sweep(path).to_dict() == sweep.to_dict()

    def test_missing_file_is_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            load_sweep(tmp_path / "nope.json")

    def test_bad_json_is_config_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_sweep(path)

    def test_missing_base_rejected(self, tmp_path):
        path = tmp_path / "nobase.json"
        path.write_text(json.dumps({"name": "x", "axes": {}}))
        with pytest.raises(ConfigError, match="base"):
            load_sweep(path)

    def test_repo_specs_load(self):
        # The shipped specs stay parseable and expandable.
        from repro.cli import find_benchmarks_dir
        bench_dir = find_benchmarks_dir()
        assert bench_dir is not None
        specs_dir = bench_dir.parent / "specs"
        names = {
            "e1_paths.json": 3,
            "e2_tiering.json": 3,
            "e4_transfer_ladder.json": 4,
            "e7_distribution.json": 6,
        }
        for filename, cells in names.items():
            sweep = load_sweep(specs_dir / filename)
            assert len(sweep.cells()) == cells, filename
            assert sweep.gate, filename


class TestToml:
    def test_dotted_keys_quoted(self):
        pytest.importorskip("tomllib")
        text = dumps_toml({"axes": {"workload.theta": [0.5]}})
        assert loads_toml(text) == {"axes": {"workload.theta": [0.5]}}

    def test_scalars_and_lists(self):
        pytest.importorskip("tomllib")
        data = {"a": True, "b": 1, "c": 0.5, "d": "x", "e": [1, 2]}
        assert loads_toml(dumps_toml(data)) == data

    def test_unrepresentable_rejected(self):
        with pytest.raises(ConfigError):
            dumps_toml({"a": object()})
