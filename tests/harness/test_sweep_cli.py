"""`repro sweep` end to end: the acceptance criteria of the harness.

Uses the shipped specs under specs/ (E1/E2/E4/E7) — the same files
`make sweep` and CI run — against temporary stores and output dirs.
"""

import json
from pathlib import Path

import pytest

from repro.cli import find_benchmarks_dir, main
from repro.harness.executor import run_sweep
from repro.harness.scenario import load_sweep

REPO = find_benchmarks_dir().parent
SPECS = REPO / "specs"


def sweep_args(spec, tmp_path, *extra):
    return [
        "sweep", str(spec),
        "--store", str(tmp_path / "store"),
        "--out-dir", str(tmp_path / "sweeps"),
        "--quiet", *extra,
    ]


class TestDeterminism:
    @pytest.mark.parametrize("spec_name", [
        "e1_paths", "e2_tiering", "e4_transfer_ladder",
        "e7_distribution",
    ])
    def test_parallel_equals_serial_byte_identical(self, spec_name):
        sweep = load_sweep(SPECS / f"{spec_name}.json")
        serial = run_sweep(sweep, jobs=1, timeout_s=300)
        parallel = run_sweep(sweep, jobs=4, timeout_s=300)
        assert serial.ok and parallel.ok
        assert serial.results_canonical() == parallel.results_canonical()


class TestSweepCommand:
    def test_gated_run_exits_zero(self, tmp_path, capsys):
        code = main(sweep_args(SPECS / "e1_paths.json", tmp_path,
                               "--gate", "--jobs", "2"))
        out = capsys.readouterr().out
        assert code == 0
        assert "gate e1_paths: PASS" in out
        report = json.loads(
            (tmp_path / "sweeps" / "e1_paths.json").read_text())
        assert report["counts"] == {"ok": 3}
        assert len(report["cells"]) == 3

    def test_rerun_hits_cache_and_says_so(self, tmp_path, capsys):
        args = sweep_args(SPECS / "e4_transfer_ladder.json", tmp_path,
                          "--jobs", "2")
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "4 cached" in out
        assert "all 4 cells served from cache; zero re-simulated" in out

    def test_cached_rerun_is_byte_identical(self, tmp_path):
        args = sweep_args(SPECS / "e1_paths.json", tmp_path)
        out_file = tmp_path / "sweeps" / "e1_paths.json"
        assert main(args) == 0
        first = json.loads(out_file.read_text())
        assert main(args) == 0
        second = json.loads(out_file.read_text())
        strip = [
            {"cell_id": c["cell_id"], "result": c["result"]}
            for c in first["cells"]
        ]
        strip2 = [
            {"cell_id": c["cell_id"], "result": c["result"]}
            for c in second["cells"]
        ]
        assert strip == strip2

    def test_violated_baseline_exits_nonzero(self, tmp_path, capsys):
        # Deliberately bend a shape invariant: claim CXL loads are
        # *faster* than NUMA loads.
        baseline = {
            "name": "tampered",
            "invariants": [{
                "kind": "ratio_bound",
                "numerator": {"where": {"topology.target": "cxl"},
                              "metric": "load_ns"},
                "denominator": {"where": {"topology.target": "numa"},
                                "metric": "load_ns"},
                "max": 0.9,
            }],
        }
        baseline_path = tmp_path / "tampered.json"
        baseline_path.write_text(json.dumps(baseline))
        code = main(sweep_args(SPECS / "e1_paths.json", tmp_path,
                               "--baseline", str(baseline_path)))
        out = capsys.readouterr().out
        assert code == 1
        assert "gate tampered: FAIL" in out

    def test_failed_cell_exits_nonzero(self, tmp_path, capsys):
        spec = tmp_path / "fail.json"
        spec.write_text(json.dumps({
            "name": "failing",
            "base": {"experiment": "debug.fail"},
            "axes": {"workload.i": [1, 2]},
        }))
        code = main(sweep_args(spec, tmp_path))
        captured = capsys.readouterr()
        assert code == 1
        assert "FAILED" in captured.err

    def test_missing_spec_is_usage_error(self, tmp_path, capsys):
        code = main(sweep_args(tmp_path / "absent.json", tmp_path))
        assert code == 2
        assert "cannot read sweep spec" in capsys.readouterr().err

    def test_gate_without_baseline_is_usage_error(self, tmp_path,
                                                  capsys):
        spec = tmp_path / "nogate.json"
        spec.write_text(json.dumps({
            "name": "nogate",
            "base": {"experiment": "debug.echo"},
            "axes": {"workload.i": [1]},
        }))
        code = main(sweep_args(spec, tmp_path, "--gate"))
        assert code == 2
        assert "no 'gate' entry" in capsys.readouterr().err

    def test_inline_gate_in_spec(self, tmp_path, capsys):
        spec = tmp_path / "inline.json"
        spec.write_text(json.dumps({
            "name": "inline",
            "base": {"experiment": "debug.echo",
                     "workload": {"x": 3}},
            "axes": {"workload.x": [3]},
            "per_cell_seeds": False,
            "gate": {"name": "inline-gate", "invariants": [
                {"kind": "metric_bound", "metric": "workload.x",
                 "min": 3, "max": 3},
            ]},
        }))
        code = main(sweep_args(spec, tmp_path, "--gate"))
        out = capsys.readouterr().out
        assert code == 0
        assert "gate inline-gate: PASS" in out

    def test_out_with_multiple_specs_rejected(self, tmp_path, capsys):
        code = main([
            "sweep", str(SPECS / "e1_paths.json"),
            str(SPECS / "e4_transfer_ladder.json"),
            "--out", str(tmp_path / "one.json"),
        ])
        assert code == 2
        assert "--out works with a single spec" in \
            capsys.readouterr().err

    def test_explicit_out_path(self, tmp_path):
        out = tmp_path / "nested" / "report.json"
        code = main(sweep_args(SPECS / "e4_transfer_ladder.json",
                               tmp_path, "--out", str(out)))
        assert code == 0
        assert json.loads(out.read_text())["name"] == "e4_transfer_ladder"

    def test_timeout_flag_reaches_cells(self, tmp_path, capsys):
        spec = tmp_path / "slow.json"
        spec.write_text(json.dumps({
            "name": "slow",
            "base": {"experiment": "debug.sleep",
                     "workload": {"seconds": 30.0}},
            "axes": {"workload.i": [1]},
        }))
        code = main(sweep_args(spec, tmp_path, "--timeout", "0.3"))
        assert code == 1
        assert "timeout" in capsys.readouterr().out


class TestShippedGates:
    """The E2/E7 specs gate-pass — the slow half of the acceptance run."""

    @pytest.mark.parametrize("spec_name", ["e2_tiering",
                                           "e7_distribution"])
    def test_spec_gates_pass(self, spec_name, tmp_path, capsys):
        code = main(sweep_args(SPECS / f"{spec_name}.json", tmp_path,
                               "--gate", "--jobs", "4"))
        out = capsys.readouterr().out
        assert code == 0, out
        assert f"gate {spec_name}: PASS" in out
