"""Coverage for smaller surfaces: errors, trace merging, hetero
workloads, planner edges, reports."""

import pytest

from repro import errors
from repro.core.engine import ConcurrentReport, ScaleUpEngine
from repro.core.hetero import DEVICE_RATES, DeviceClass, mixed_workload
from repro.core.ndp import NDPController
from repro.query.planner import OffloadChoice, choose_scan_site
from repro.sim.interconnect import AccessPath
from repro.sim.memory import MemoryDevice
from repro import config
from repro.workloads import Access
from repro.workloads.traces import merge_timed


class TestErrorHierarchy:
    def test_all_library_errors_are_repro_errors(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or \
                    obj is errors.ReproError

    def test_specific_parents(self):
        assert issubclass(errors.DeadlockError, errors.TransactionError)
        assert issubclass(errors.PageFaultError, errors.BufferPoolError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.TopologyError("x")


class TestMergeTimed:
    def test_merges_by_timestamp(self):
        a = [(1.0, Access(page_id=1)), (5.0, Access(page_id=5))]
        b = [(2.0, Access(page_id=2)), (3.0, Access(page_id=3))]
        merged = list(merge_timed(a, b))
        assert [t for t, _x in merged] == [1.0, 2.0, 3.0, 5.0]

    def test_empty_streams(self):
        assert list(merge_timed([], [])) == []


class TestHeteroWorkload:
    def test_deterministic(self):
        a = mixed_workload(num_tasks=20, seed=2)
        b = mixed_workload(num_tasks=20, seed=2)
        assert a == b

    def test_fractions_respected(self):
        tasks = mixed_workload(num_tasks=1_000, ml_fraction=0.5,
                               compress_fraction=0.0, seed=3)
        ml = sum(1 for t in tasks if t.kind == "ml_infer")
        assert 0.4 < ml / 1_000 < 0.6
        assert not any(t.kind == "compress" for t in tasks)

    def test_arrivals_increase(self):
        tasks = mixed_workload(num_tasks=10, arrival_gap_ns=100.0)
        arrivals = [t.arrival_ns for t in tasks]
        assert arrivals == sorted(arrivals)

    def test_device_rate_table_shape(self):
        for klass in DeviceClass:
            assert klass in DEVICE_RATES
            assert all(rate > 0 for rate in DEVICE_RATES[klass].values())


class TestPlannerEdges:
    def test_host_preferred_when_cheaper(self):
        controller = NDPController(
            AccessPath(device=MemoryDevice(config.cxl_expander_ddr5())),
            scan_rate=1.0,        # a uselessly slow controller
            host_scan_rate=80.0,
        )
        choice = choose_scan_site(controller, num_pages=1_000,
                                  selectivity=0.5)
        assert not choice.offload
        assert choice.speedup == 1.0  # chosen plan IS the host plan

    def test_offload_choice_speedup_math(self):
        choice = OffloadChoice(offload=True, host_cost_ns=100.0,
                               ndp_cost_ns=25.0)
        assert choice.speedup == pytest.approx(4.0)


class TestConcurrentReportEdges:
    def test_p95_for_unknown_threads(self):
        report = ConcurrentReport(name="x")
        assert report.p95_for((7, 8)) == 0.0

    def test_empty_report_metrics(self):
        report = ConcurrentReport(name="x")
        assert report.mean_latency_ns == 0.0
        assert report.p95_latency_ns == 0.0
        assert report.throughput_ops_per_s == 0.0


class TestEngineGetPage:
    def test_get_page_faults_silently(self):
        engine = ScaleUpEngine.build(dram_pages=4, with_storage=False)
        page = engine.pool.get_page(3)
        assert page.page_id == 3
        # get_page installs residency but charges no time.
        assert engine.pool.clock.now == 0.0
        assert engine.pool.tier_of(3) is not None
