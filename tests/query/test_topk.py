"""Top-K operator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import ScaleUpEngine
from repro.errors import QueryError
from repro.query.operators import TableScan, collect
from repro.query.schema import Column, ColumnType, Schema
from repro.query.table import Table
from repro.query.topk import TopK
from repro.storage.disk import StorageDevice
from repro.storage.file import PageFile

SCHEMA = Schema([Column("id"), Column("score", ColumnType.FLOAT)])


def setup(values):
    pf = PageFile(StorageDevice())
    table = Table("t", SCHEMA, pf)
    table.bulk_load((i, float(v)) for i, v in enumerate(values))
    engine = ScaleUpEngine.build(dram_pages=table.page_count + 4,
                                 backing=pf)
    return engine, table


class TestTopK:
    def test_largest_k(self):
        engine, table = setup(range(100))
        rows, _ = collect(TopK(TableScan(table), "score", k=3), engine)
        assert [r[1] for r in rows] == [99.0, 98.0, 97.0]

    def test_smallest_k(self):
        engine, table = setup(range(100))
        rows, _ = collect(
            TopK(TableScan(table), "score", k=3, descending=False),
            engine,
        )
        assert [r[1] for r in rows] == [0.0, 1.0, 2.0]

    def test_k_larger_than_input(self):
        engine, table = setup([5, 1, 3])
        rows, _ = collect(TopK(TableScan(table), "score", k=10), engine)
        assert len(rows) == 3
        assert [r[1] for r in rows] == [5.0, 3.0, 1.0]

    def test_duplicate_keys_stable_count(self):
        engine, table = setup([7, 7, 7, 7])
        rows, _ = collect(TopK(TableScan(table), "score", k=2), engine)
        assert len(rows) == 2

    def test_invalid_k(self):
        _e, table = setup([1])
        with pytest.raises(QueryError):
            TopK(TableScan(table), "score", k=0)

    def test_non_numeric_key_rejected(self):
        pf = PageFile(StorageDevice())
        schema = Schema([Column("s", ColumnType.STR)])
        table = Table("t", schema, pf)
        table.bulk_load([("a",)])
        engine = ScaleUpEngine.build(dram_pages=8, backing=pf)
        with pytest.raises(QueryError):
            list(TopK(TableScan(table), "s", k=1).rows(engine))

    def test_charges_time(self):
        engine, table = setup(range(1_000))
        _rows, elapsed = collect(
            TopK(TableScan(table), "score", k=10), engine)
        assert elapsed > 0


@given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                 allow_nan=False),
                       min_size=1, max_size=200),
       k=st.integers(min_value=1, max_value=50))
@settings(max_examples=50, deadline=None)
def test_topk_matches_sorted_reference(values, k):
    engine, table = setup(values)
    rows, _ = collect(TopK(TableScan(table), "score", k=k), engine)
    expected = sorted((float(v) for v in values), reverse=True)[:k]
    assert [r[1] for r in rows] == expected
