"""Hash join, external sort, sort-merge join, and the planner."""

import pytest

from repro import config
from repro.core.engine import ScaleUpEngine
from repro.query.hashjoin import HashJoin
from repro.query.operators import TableScan, collect
from repro.query.planner import JoinPlanner, choose_scan_site
from repro.query.schema import Column, ColumnType, Schema
from repro.query.sort import ExternalSort, SortMergeJoin
from repro.query.table import Table
from repro.sim.interconnect import AccessPath, Link
from repro.sim.memory import MemoryDevice
from repro.storage.disk import StorageDevice
from repro.storage.file import PageFile


@pytest.fixture
def setup():
    pf = PageFile(StorageDevice())
    left_schema = Schema([Column("id"), Column("a", ColumnType.FLOAT)])
    right_schema = Schema([Column("rid"), Column("id"),
                           Column("b", ColumnType.STR)])
    left = Table("left", left_schema, pf)
    left.bulk_load((i, float(i)) for i in range(200))
    right = Table("right", right_schema, pf)
    # Each left id matches exactly two right rows.
    right.bulk_load((j, j % 200, f"r{j}") for j in range(400))
    engine = ScaleUpEngine.build(dram_pages=64, backing=pf)
    return engine, left, right


def _join_key_counts(rows, idx=0):
    counts = {}
    for row in rows:
        counts[row[idx]] = counts.get(row[idx], 0) + 1
    return counts


class TestHashJoin:
    def test_inner_join_cardinality(self, setup):
        engine, left, right = setup
        join = HashJoin(TableScan(left), TableScan(right), "id", "id")
        rows, _ = collect(join, engine)
        assert len(rows) == 400
        assert all(_join_key_counts(rows)[k] == 2 for k in range(200))

    def test_join_schema_merges_without_duplicates(self, setup):
        _engine, left, right = setup
        join = HashJoin(TableScan(left), TableScan(right), "id", "id")
        assert join.schema.names == ["id", "a", "rid", "b"]

    def test_no_matches(self, setup):
        engine, left, right = setup
        join = HashJoin(
            TableScan(left, predicate=lambda r: r[0] > 10_000),
            TableScan(right), "id", "id",
        )
        rows, _ = collect(join, engine)
        assert rows == []

    def test_partitioned_join_same_result(self, setup):
        engine, left, right = setup
        join = HashJoin(TableScan(left), TableScan(right), "id", "id",
                        work_mem_rows=50)  # forces 4 partitions
        rows, _ = collect(join, engine)
        assert len(rows) == 400

    def test_spill_charges_time(self, setup):
        engine, left, right = setup
        # Warm the pool so page-fault noise doesn't mask spill costs.
        collect(TableScan(left), engine)
        collect(TableScan(right), engine)
        path = AccessPath(device=MemoryDevice(config.cxl_expander_ddr5()),
                          links=(Link(config.cxl_port()),))
        in_mem = HashJoin(TableScan(left), TableScan(right), "id", "id",
                          work_path=path)
        _rows, t_mem = collect(in_mem, engine)
        spilled = HashJoin(TableScan(left), TableScan(right), "id", "id",
                           work_path=path, work_mem_rows=50)
        _rows, t_spill = collect(spilled, engine)
        assert t_spill > t_mem


class TestExternalSort:
    def test_sorts(self, setup):
        engine, left, _right = setup
        sort = ExternalSort(TableScan(left), "id", descending=True)
        rows, _ = collect(sort, engine)
        assert [r[0] for r in rows[:3]] == [199, 198, 197]

    def test_merge_passes(self, setup):
        _engine, left, _right = setup
        sort = ExternalSort(TableScan(left), "id", work_mem_rows=10)
        assert sort.merge_passes(200) == 1
        assert sort.merge_passes(5) == 0
        big = ExternalSort(TableScan(left), "id", work_mem_rows=10)
        assert big.merge_passes(10 * 64 * 64) >= 2

    def test_spill_costs_time(self, setup):
        engine, left, _right = setup
        path = AccessPath(device=MemoryDevice(config.cxl_expander_ddr5()))
        small = ExternalSort(TableScan(left), "id", work_path=path,
                             work_mem_rows=10)
        _rows, t_spill = collect(small, engine)
        big = ExternalSort(TableScan(left), "id", work_path=path)
        _rows, t_mem = collect(big, engine)
        assert t_spill > t_mem

    def test_empty_input(self, setup):
        engine, left, _right = setup
        sort = ExternalSort(
            TableScan(left, predicate=lambda _r: False), "id"
        )
        rows, _ = collect(sort, engine)
        assert rows == []


class TestSortMergeJoin:
    def test_same_result_as_hash_join(self, setup):
        engine, left, right = setup
        smj = SortMergeJoin(TableScan(left), TableScan(right), "id", "id")
        rows, _ = collect(smj, engine)
        assert len(rows) == 400
        assert smj.schema.names == ["id", "a", "rid", "b"]

    def test_duplicate_keys_cross_product(self, setup):
        engine, _left, right = setup
        pf = right.pagefile
        dup_schema = Schema([Column("id"), Column("x")])
        dups = Table("dups", dup_schema, pf)
        dups.bulk_load([(1, 10), (1, 11)])
        smj = SortMergeJoin(TableScan(dups), TableScan(dups), "id", "id")
        rows, _ = collect(smj, engine)
        assert len(rows) == 4


class TestJoinPlanner:
    def test_hash_preferred_in_fast_memory(self, setup):
        _engine, left, right = setup
        dram = AccessPath(device=MemoryDevice(config.local_ddr5()))
        planner = JoinPlanner(work_path=dram)
        _op, choice = planner.choose_join(
            TableScan(left), TableScan(right), "id", "id",
            left_rows=1_000_000, right_rows=1_000_000,
        )
        assert choice.algorithm == "hash"

    def test_crossover_possible_with_latency_bound_memory(self, setup):
        """At rack scale (GFAM latency), large hash tables pay per-probe
        latency while sort streams — the Sec 3.3 'accepted wisdom'
        question."""
        _engine, left, right = setup
        gfam = AccessPath(
            device=MemoryDevice(config.cxl_expander_ddr5()),
            links=(Link(config.cxl_port()), Link(config.cxl_switch_hop()),
                   Link(config.cxl_switch_hop())),
        )
        planner = JoinPlanner(work_path=gfam, work_mem_rows=10_000_000)
        _op, choice = planner.choose_join(
            TableScan(left), TableScan(right), "id", "id",
            left_rows=5_000_000, right_rows=5_000_000,
        )
        assert choice.algorithm == "sort-merge"

    def test_chosen_operator_runs(self, setup):
        engine, left, right = setup
        planner = JoinPlanner()
        op, _choice = planner.choose_join(
            TableScan(left), TableScan(right), "id", "id",
            left_rows=200, right_rows=400,
        )
        rows, _ = collect(op, engine)
        assert len(rows) == 400


class TestScanSiteChoice:
    def test_selective_scan_offloaded(self):
        from repro.core.ndp import NDPController
        path = AccessPath(device=MemoryDevice(config.cxl_expander_ddr5()),
                          links=(Link(config.cxl_port()),))
        controller = NDPController(path)
        choice = choose_scan_site(controller, num_pages=100_000,
                                  selectivity=0.01)
        assert choice.offload
        assert choice.speedup > 1.0
