"""Schemas and tables."""

import pytest

from repro.errors import QueryError
from repro.query.schema import Column, ColumnType, Schema
from repro.query.table import Table
from repro.storage.disk import StorageDevice
from repro.storage.file import PageFile


@pytest.fixture
def schema() -> Schema:
    return Schema([
        Column("id"), Column("value", ColumnType.FLOAT),
        Column("label", ColumnType.STR),
    ])


class TestSchema:
    def test_index_of(self, schema):
        assert schema.index_of("id") == 0
        assert schema.index_of("label") == 2

    def test_unknown_column(self, schema):
        with pytest.raises(QueryError):
            schema.index_of("ghost")

    def test_has(self, schema):
        assert schema.has("value")
        assert not schema.has("ghost")

    def test_duplicate_names_rejected(self):
        with pytest.raises(QueryError):
            Schema([Column("a"), Column("a")])

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            Schema([])

    def test_record_width(self, schema):
        assert schema.record_width_bytes == 8 + 8 + 24

    def test_project(self, schema):
        projected = schema.project(["label", "id"])
        assert projected.names == ["label", "id"]
        assert len(schema) == 3  # original untouched

    def test_names(self, schema):
        assert schema.names == ["id", "value", "label"]


class TestTable:
    def _table(self, schema, rows=100):
        pf = PageFile(StorageDevice())
        table = Table("t", schema, pf)
        table.bulk_load((i, float(i), f"row{i}") for i in range(rows))
        return table

    def test_bulk_load_counts(self, schema):
        table = self._table(schema, rows=100)
        assert table.row_count == 100

    def test_records_per_page_from_width(self, schema):
        table = self._table(schema, rows=0)
        expected = int(4096 * 0.9) // schema.record_width_bytes
        assert table.records_per_page == expected

    def test_page_count(self, schema):
        table = self._table(schema, rows=100)
        import math
        assert table.page_count == math.ceil(100 / table.records_per_page)

    def test_pages_roundtrip_rows(self, schema):
        table = self._table(schema, rows=50)
        rows = [row for _pid, records in table.pages() for row in records]
        assert len(rows) == 50
        assert rows[0] == (0, 0.0, "row0")

    def test_arity_mismatch_rejected(self, schema):
        pf = PageFile(StorageDevice())
        table = Table("t", schema, pf)
        with pytest.raises(QueryError):
            table.bulk_load([(1, 2.0)])

    def test_two_tables_share_pagefile(self, schema):
        pf = PageFile(StorageDevice())
        t1 = Table("a", schema, pf)
        t2 = Table("b", schema, pf)
        t1.bulk_load([(1, 1.0, "x")])
        t2.bulk_load([(2, 2.0, "y")])
        assert set(t1.page_ids).isdisjoint(t2.page_ids)

    def test_invalid_fill_factor(self, schema):
        pf = PageFile(StorageDevice())
        with pytest.raises(QueryError):
            Table("t", schema, pf, fill_factor=0.0)
