"""Scan, filter, project, aggregate."""

import pytest

from repro.core.engine import ScaleUpEngine
from repro.errors import QueryError
from repro.query.operators import (
    Filter,
    HashAggregate,
    Project,
    TableScan,
    collect,
)
from repro.query.schema import Column, ColumnType, Schema
from repro.query.table import Table
from repro.storage.disk import StorageDevice
from repro.storage.file import PageFile


@pytest.fixture
def setup():
    pf = PageFile(StorageDevice())
    schema = Schema([
        Column("k"), Column("v", ColumnType.FLOAT),
        Column("grp", ColumnType.STR),
    ])
    table = Table("t", schema, pf)
    table.bulk_load(
        (i, float(i), "even" if i % 2 == 0 else "odd")
        for i in range(1_000)
    )
    engine = ScaleUpEngine.build(dram_pages=table.page_count + 4,
                                 backing=pf)
    return engine, table


class TestTableScan:
    def test_full_scan_returns_all(self, setup):
        engine, table = setup
        rows, elapsed = collect(TableScan(table), engine)
        assert len(rows) == 1_000
        assert elapsed > 0

    def test_predicate_pushdown(self, setup):
        engine, table = setup
        scan = TableScan(table, predicate=lambda r: r[0] < 10)
        rows, _ = collect(scan, engine)
        assert len(rows) == 10

    def test_projection(self, setup):
        engine, table = setup
        scan = TableScan(table, projection=["v"])
        rows, _ = collect(scan, engine)
        assert rows[0] == (0.0,)
        assert scan.schema.names == ["v"]

    def test_scan_touches_every_page(self, setup):
        engine, table = setup
        before = engine.pool.stats.accesses
        collect(TableScan(table), engine)
        assert (engine.pool.stats.accesses - before) == table.page_count

    def test_scans_flagged_for_placement(self, setup):
        engine, table = setup
        collect(TableScan(table), engine)
        # Scan accesses admitted via the scan path: heat is discounted.
        heat = engine.pool.tracker.heat(table.page_ids[0])
        assert heat < 1.0


class TestFilterProject:
    def test_filter_composes(self, setup):
        engine, table = setup
        op = Filter(TableScan(table), lambda r: r[0] >= 990)
        rows, _ = collect(op, engine)
        assert len(rows) == 10

    def test_project_composes(self, setup):
        engine, table = setup
        op = Project(TableScan(table), ["grp", "k"])
        rows, _ = collect(op, engine)
        assert rows[0] == ("even", 0)

    def test_project_unknown_column(self, setup):
        _engine, table = setup
        with pytest.raises(QueryError):
            Project(TableScan(table), ["ghost"])


class TestHashAggregate:
    def test_count_and_sum(self, setup):
        engine, table = setup
        agg = HashAggregate(
            TableScan(table), group_by=["grp"],
            aggs=[("n", "count", None), ("total", "sum", "v")],
        )
        rows, _ = collect(agg, engine)
        by_group = {r[0]: r for r in rows}
        assert by_group["even"][1] == 500
        assert by_group["even"][2] == pytest.approx(sum(range(0, 1000, 2)))

    def test_min_max_avg(self, setup):
        engine, table = setup
        agg = HashAggregate(
            TableScan(table), group_by=["grp"],
            aggs=[("lo", "min", "v"), ("hi", "max", "v"),
                  ("mean", "avg", "v")],
        )
        rows, _ = collect(agg, engine)
        odd = next(r for r in rows if r[0] == "odd")
        assert odd[1] == 1.0
        assert odd[2] == 999.0
        assert odd[3] == pytest.approx(500.0)

    def test_global_aggregate_single_group(self, setup):
        engine, table = setup
        agg = HashAggregate(
            TableScan(table), group_by=["grp"],
            aggs=[("n", "count", None)],
        )
        rows, _ = collect(agg, engine)
        assert len(rows) == 2

    def test_unknown_agg_rejected(self, setup):
        _engine, table = setup
        with pytest.raises(QueryError):
            HashAggregate(TableScan(table), ["grp"],
                          [("x", "median", "v")])

    def test_schema_shape(self, setup):
        _engine, table = setup
        agg = HashAggregate(TableScan(table), ["grp"],
                            [("n", "count", None)])
        assert agg.schema.names == ["grp", "n"]
