"""Index-nested-loop join over the tiered B+tree."""

import pytest

from repro import config
from repro.core.btree import TieredBTree
from repro.core.buffer import Tier, TieredBufferPool
from repro.core.engine import ScaleUpEngine
from repro.core.placement import StaticPolicy
from repro.errors import QueryError
from repro.query.hashjoin import HashJoin
from repro.query.indexjoin import IndexNestedLoopJoin
from repro.query.operators import TableScan, collect
from repro.query.schema import Column, ColumnType, Schema
from repro.query.table import Table
from repro.sim.interconnect import AccessPath, Link
from repro.sim.memory import MemoryDevice
from repro.storage.disk import StorageDevice
from repro.storage.file import PageFile

INNER_SCHEMA = Schema([Column("id"), Column("payload", ColumnType.STR)])


@pytest.fixture
def setup():
    pf = PageFile(StorageDevice())
    outer_schema = Schema([Column("k"), Column("id")])
    outer = Table("outer", outer_schema, pf)
    outer.bulk_load((i, i % 500) for i in range(1_000))
    tiers = [
        Tier("dram", AccessPath(device=MemoryDevice(config.local_ddr5())),
             4_096),
        Tier("cxl", AccessPath(
            device=MemoryDevice(config.cxl_expander_ddr5()),
            links=(Link(config.cxl_port()),)), 4_096),
    ]
    pool = TieredBufferPool(tiers=tiers, backing=pf,
                            placement=StaticPolicy(lambda _p: 0))
    engine = ScaleUpEngine(pool)
    items = [(i, (i, f"row{i}")) for i in range(500)]
    index = TieredBTree.bulk_build(pool, items,
                                   first_page_id=100_000)
    return engine, outer, index


class TestJoinSemantics:
    def test_cardinality_and_contents(self, setup):
        engine, outer, index = setup
        join = IndexNestedLoopJoin(TableScan(outer), index, "id",
                                   INNER_SCHEMA)
        rows, _ = collect(join, engine)
        assert len(rows) == 1_000
        assert rows[0] == (0, 0, "row0")

    def test_schema_merges(self, setup):
        _engine, outer, index = setup
        join = IndexNestedLoopJoin(TableScan(outer), index, "id",
                                   INNER_SCHEMA)
        assert join.schema.names == ["k", "id", "payload"]

    def test_missing_keys_dropped(self, setup):
        engine, outer, index = setup
        pf = outer.pagefile
        sparse = Table("sparse", Schema([Column("id")]), pf)
        sparse.bulk_load([(0,), (499,), (9_999,)])
        join = IndexNestedLoopJoin(TableScan(sparse), index, "id",
                                   INNER_SCHEMA)
        rows, _ = collect(join, engine)
        assert len(rows) == 2

    def test_matches_hash_join(self, setup):
        engine, outer, index = setup
        pf = outer.pagefile
        inner = Table("inner", INNER_SCHEMA, pf)
        inner.bulk_load((i, f"row{i}") for i in range(500))
        inlj = IndexNestedLoopJoin(TableScan(outer), index, "id",
                                   INNER_SCHEMA)
        hj = HashJoin(TableScan(outer), TableScan(inner), "id", "id")
        inlj_rows, _ = collect(inlj, engine)
        hj_rows, _ = collect(hj, engine)
        assert sorted(inlj_rows) == sorted(hj_rows)

    def test_foreign_pool_rejected(self, setup):
        engine, outer, index = setup
        other = ScaleUpEngine.build(dram_pages=16, with_storage=False)
        join = IndexNestedLoopJoin(TableScan(outer), index, "id",
                                   INNER_SCHEMA)
        with pytest.raises(QueryError):
            list(join.rows(other))


class TestCosts:
    def test_probe_cost_scales_with_outer(self, setup):
        _engine, outer, index = setup
        inlj = IndexNestedLoopJoin(TableScan(outer), index, "id",
                                   INNER_SCHEMA)
        assert inlj.estimated_cost_ns(1_000) > \
            inlj.estimated_cost_ns(100)

    def test_index_placement_changes_join_cost(self, setup):
        """Probing a CXL-resident index is slower than a DRAM one."""
        engine, outer, index = setup
        join = IndexNestedLoopJoin(TableScan(outer), index, "id",
                                   INNER_SCHEMA)
        _rows, t_dram = collect(join, engine)
        # Push the whole index to the CXL tier.
        for page_id in (index.inner_page_ids + index.leaf_page_ids):
            if engine.pool.tier_of(page_id) == 0:
                engine.pool.migrate(page_id, 1)
        _rows, t_cxl = collect(join, engine)
        assert t_cxl > t_dram
