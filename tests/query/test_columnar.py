"""Columnar storage and scans."""

import pytest

from repro.core.engine import ScaleUpEngine
from repro.core.placement import StaticPolicy
from repro.errors import QueryError
from repro.query.columnar import ColumnScan, ColumnTable
from repro.query.operators import TableScan, collect
from repro.query.schema import Column, ColumnType, Schema
from repro.query.table import Table
from repro.storage.disk import StorageDevice
from repro.storage.file import PageFile

SCHEMA = Schema([
    Column("id"), Column("v", ColumnType.FLOAT),
    Column("label", ColumnType.STR), Column("d", ColumnType.DATE),
])


@pytest.fixture
def setup():
    pf = PageFile(StorageDevice())
    table = ColumnTable("t", SCHEMA, pf)
    table.bulk_load(
        (i, float(i), f"label{i}", i % 365) for i in range(5_000)
    )
    engine = ScaleUpEngine.build(dram_pages=table.total_pages + 8,
                                 backing=pf)
    return engine, table, pf


class TestColumnTable:
    def test_row_count(self, setup):
        _e, table, _pf = setup
        assert table.row_count == 5_000

    def test_narrow_columns_pack_tighter(self, setup):
        _e, table, _pf = setup
        # DATE (4 B) packs ~6x denser than STR (24 B).
        assert len(table.column_pages("d")) < \
            len(table.column_pages("label")) / 3

    def test_pages_for_projection(self, setup):
        _e, table, _pf = setup
        assert table.pages_for(["id"]) == len(table.column_pages("id"))
        assert table.pages_for(["id", "v"]) > table.pages_for(["id"])

    def test_arity_checked(self):
        pf = PageFile(StorageDevice())
        table = ColumnTable("t", SCHEMA, pf)
        with pytest.raises(QueryError):
            table.bulk_load([(1, 2.0)])

    def test_unknown_column(self, setup):
        _e, table, _pf = setup
        with pytest.raises(QueryError):
            table.column_pages("ghost")


class TestColumnScan:
    def test_projection_contents(self, setup):
        engine, table, _pf = setup
        scan = ColumnScan(table, ["id", "v"])
        rows, _ = collect(scan, engine)
        assert len(rows) == 5_000
        assert rows[10] == (10, 10.0)
        assert scan.schema.names == ["id", "v"]

    def test_predicate_pushdown(self, setup):
        engine, table, _pf = setup
        scan = ColumnScan(table, ["id"], predicate_column="d",
                          predicate=lambda d: d < 10)
        rows, _ = collect(scan, engine)
        expected = sum(1 for i in range(5_000) if i % 365 < 10)
        assert len(rows) == expected

    def test_untouched_columns_cost_nothing(self, setup):
        engine, table, _pf = setup
        before = engine.pool.stats.accesses
        collect(ColumnScan(table, ["id"]), engine)
        narrow = engine.pool.stats.accesses - before
        before = engine.pool.stats.accesses
        collect(ColumnScan(table, SCHEMA.names), engine)
        wide = engine.pool.stats.accesses - before
        assert narrow == len(table.column_pages("id"))
        assert wide == table.total_pages

    def test_mismatched_predicate_args(self, setup):
        _e, table, _pf = setup
        with pytest.raises(QueryError):
            ColumnScan(table, ["id"], predicate=lambda _v: True)

    def test_matches_row_store(self, setup):
        engine, column_table, pf = setup
        row_table = Table("rows", SCHEMA, pf)
        row_table.bulk_load(
            (i, float(i), f"label{i}", i % 365) for i in range(5_000)
        )
        col_rows, _ = collect(
            ColumnScan(column_table, SCHEMA.names), engine)
        row_rows, _ = collect(TableScan(row_table), engine)
        assert col_rows == row_rows


class TestColumnarAdvantageOnCXL:
    def test_narrow_scan_cheaper_than_row_store_on_cxl(self):
        """The Sec 3.1 payoff: projecting 1 of 4 columns over CXL
        moves a fraction of the bytes a row store must."""
        pf = PageFile(StorageDevice())
        col = ColumnTable("c", SCHEMA, pf)
        row = Table("r", SCHEMA, pf)
        data = [(i, float(i), f"label{i}", i % 365)
                for i in range(20_000)]
        col.bulk_load(data)
        row.bulk_load(data)
        engine = ScaleUpEngine.build(
            dram_pages=1, cxl_pages=col.total_pages + row.page_count + 16,
            placement=StaticPolicy(lambda _p: 1), backing=pf,
        )
        # Warm both.
        collect(ColumnScan(col, ["v"]), engine)
        collect(TableScan(row, projection=["v"]), engine)
        _r, t_col = collect(ColumnScan(col, ["v"]), engine)
        _r, t_row = collect(TableScan(row, projection=["v"]), engine)
        assert t_col < 0.6 * t_row
