"""TPC-H-shaped dataset and queries (E3 backbone)."""

import pytest

from repro.core.engine import ScaleUpEngine
from repro.core.placement import StaticPolicy
from repro.query import tpch
from repro.storage.disk import StorageDevice
from repro.storage.file import PageFile


@pytest.fixture(scope="module")
def dataset():
    pf = PageFile(StorageDevice())
    data = tpch.generate(pf, lineitem_rows=8_000, seed=19)
    return pf, data


def fresh_engine(pf, data, cxl_only=False):
    pages = data.total_pages + 8
    if cxl_only:
        return ScaleUpEngine.build(
            dram_pages=1, cxl_pages=pages, backing=pf,
            placement=StaticPolicy(lambda _p: 1),
        )
    return ScaleUpEngine.build(dram_pages=pages, backing=pf)


class TestDatasetShape:
    def test_cardinality_ratios(self, dataset):
        _pf, data = dataset
        assert data.lineitem.row_count == 8_000
        assert data.orders.row_count == 2_000
        assert data.customer.row_count == 200

    def test_lineitem_dominates_pages(self, dataset):
        _pf, data = dataset
        assert data.lineitem.page_count > data.orders.page_count
        assert data.total_pages > 0

    def test_deterministic(self):
        pf1, pf2 = (PageFile(StorageDevice()) for _ in range(2))
        d1 = tpch.generate(pf1, lineitem_rows=500, seed=7)
        d2 = tpch.generate(pf2, lineitem_rows=500, seed=7)
        rows1 = [r for _p, rs in d1.lineitem.pages() for r in rs]
        rows2 = [r for _p, rs in d2.lineitem.pages() for r in rs]
        assert rows1 == rows2


class TestQueries:
    @pytest.mark.parametrize("name", sorted(tpch.QUERIES))
    def test_query_returns_rows(self, dataset, name):
        pf, data = dataset
        engine = fresh_engine(pf, data)
        rows = tpch.QUERIES[name](engine, data)
        assert isinstance(rows, list)
        if name in ("Q1", "Q5", "Q12", "Q14"):
            assert rows  # these always produce groups

    def test_q1_group_count(self, dataset):
        pf, data = dataset
        engine = fresh_engine(pf, data)
        rows = tpch.q1(engine, data)
        # 3 returnflags x 2 linestatuses at most.
        assert 1 <= len(rows) <= 6

    def test_q6_revenue_matches_manual(self, dataset):
        pf, data = dataset
        engine = fresh_engine(pf, data)
        rows = tpch.q6(engine, data)
        manual = 0.0
        s = tpch.LINEITEM_SCHEMA
        ship, disc, qty, price = (
            s.index_of("shipdate"), s.index_of("discount"),
            s.index_of("quantity"), s.index_of("extendedprice"),
        )
        for _pid, records in data.lineitem.pages():
            for r in records:
                if (1_000 <= r[ship] < 1_365
                        and 0.05 <= r[disc] <= 0.07 and r[qty] < 24):
                    manual += r[price]
        total = sum(r[-1] for r in rows)
        assert total == pytest.approx(manual)

    def test_results_identical_on_dram_and_cxl(self, dataset):
        pf, data = dataset
        dram_rows = tpch.q1(fresh_engine(pf, data), data)
        cxl_rows = tpch.q1(fresh_engine(pf, data, cxl_only=True), data)
        assert sorted(dram_rows) == sorted(cxl_rows)


class TestCXLOverheadShape:
    def test_overheads_query_dependent_and_bounded(self, dataset):
        """Pond (Sec 2.4): TPC-H overheads 'highly query-dependent'
        but bounded — not a uniform multiple."""
        pf, data = dataset
        overheads = {}
        for name, query in tpch.QUERIES.items():
            dram = fresh_engine(pf, data)
            query(dram, data)           # warm
            start = dram.pool.clock.now
            query(dram, data)
            t_dram = dram.pool.clock.now - start

            cxl = fresh_engine(pf, data, cxl_only=True)
            query(cxl, data)
            start = cxl.pool.clock.now
            query(cxl, data)
            t_cxl = cxl.pool.clock.now - start
            overheads[name] = t_cxl / t_dram - 1.0
        # Query-dependent: a real spread exists.
        assert max(overheads.values()) > 2 * min(overheads.values())
        # Bounded: nothing close to the raw 2.4x latency ratio.
        assert all(o < 1.0 for o in overheads.values())
        # And the join/agg-heavy queries sit below ~25%.
        assert overheads["Q1"] < 0.25
        assert overheads["Q5"] < 0.25
