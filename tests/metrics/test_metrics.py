"""Streaming stats, histograms, counters, report tables."""

import math

import pytest

from repro.metrics.counters import CounterRegistry
from repro.metrics.report import Table, fmt_ratio
from repro.metrics.stats import Histogram, StreamingStats, percentile


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 0.5) == 3

    def test_extremes(self):
        data = [5.0, 1.0, 3.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 1.0) == 5.0

    def test_interpolates(self):
        assert percentile([0.0, 10.0], 0.25) == pytest.approx(2.5)

    def test_single_sample(self):
        assert percentile([7.0], 0.9) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestStreamingStats:
    def test_mean_and_total(self):
        stats = StreamingStats()
        for x in (1.0, 2.0, 3.0):
            stats.add(x)
        assert stats.mean == pytest.approx(2.0)
        assert stats.total == pytest.approx(6.0)
        assert stats.count == 3

    def test_min_max(self):
        stats = StreamingStats()
        for x in (5.0, -1.0, 3.0):
            stats.add(x)
        assert stats.min == -1.0
        assert stats.max == 5.0

    def test_variance_matches_numpy(self):
        import numpy as np
        data = [1.5, 2.5, 9.0, -4.0, 0.0, 3.3]
        stats = StreamingStats()
        for x in data:
            stats.add(x)
        assert stats.variance == pytest.approx(np.var(data))
        assert stats.std == pytest.approx(np.std(data))

    def test_variance_of_singleton_is_zero(self):
        stats = StreamingStats()
        stats.add(5.0)
        assert stats.variance == 0.0

    def test_merge_equals_sequential(self):
        a, b, combined = StreamingStats(), StreamingStats(), StreamingStats()
        for x in (1.0, 2.0, 3.0):
            a.add(x)
            combined.add(x)
        for x in (10.0, 20.0):
            b.add(x)
            combined.add(x)
        a.merge(b)
        assert a.count == combined.count
        assert a.mean == pytest.approx(combined.mean)
        assert a.variance == pytest.approx(combined.variance)
        assert a.min == combined.min
        assert a.max == combined.max

    def test_merge_into_empty(self):
        a, b = StreamingStats(), StreamingStats()
        b.add(4.0)
        a.merge(b)
        assert a.count == 1
        assert a.mean == 4.0

    def test_merge_empty_is_noop(self):
        a = StreamingStats()
        a.add(1.0)
        a.merge(StreamingStats())
        assert a.count == 1


class TestHistogram:
    def test_counts(self):
        hist = Histogram()
        for x in (1.0, 10.0, 100.0):
            hist.add(x)
        assert hist.count == 3
        assert len(hist) == 3

    def test_quantile_bounds_relative_error(self):
        hist = Histogram(growth=1.25)
        values = [float(x) for x in range(1, 2_000)]
        for x in values:
            hist.add(x)
        true_p99 = percentile(values, 0.99)
        approx = hist.quantile(0.99)
        assert abs(approx - true_p99) / true_p99 < 0.3

    def test_quantile_monotone(self):
        hist = Histogram()
        for x in range(1, 1_000):
            hist.add(float(x))
        assert hist.quantile(0.5) <= hist.quantile(0.9) \
            <= hist.quantile(0.999)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            Histogram().add(0.0)

    def test_quantile_of_empty_rejected(self):
        with pytest.raises(ValueError):
            Histogram().quantile(0.5)

    def test_wide_range_handled(self):
        hist = Histogram()
        hist.add(80.0)        # DRAM hit
        hist.add(4_000_000.0)  # disk fault
        assert hist.quantile(1.0) >= 4_000_000.0 * 0.8
        assert not math.isinf(hist.stats.mean)


class TestCounterRegistry:
    def test_incr_and_get(self):
        counters = CounterRegistry()
        assert counters.incr("x") == 1
        assert counters.incr("x", by=4) == 5
        assert counters.get("x") == 5
        assert counters["x"] == 5

    def test_missing_is_zero(self):
        assert CounterRegistry().get("nope") == 0

    def test_contains(self):
        counters = CounterRegistry()
        counters.incr("a")
        assert "a" in counters
        assert "b" not in counters

    def test_reset_one_and_all(self):
        counters = CounterRegistry()
        counters.incr("a")
        counters.incr("b")
        counters.reset("a")
        assert counters.get("a") == 0
        assert counters.get("b") == 1
        counters.reset()
        assert counters.snapshot() == {}

    def test_snapshot_is_copy(self):
        counters = CounterRegistry()
        counters.incr("a")
        snap = counters.snapshot()
        snap["a"] = 99
        assert counters.get("a") == 1


class TestReportTable:
    def test_render_contains_everything(self):
        table = Table("demo", ["name", "value"])
        table.add_row("alpha", 1.5)
        table.add_row("beta", 20_000)
        text = table.render()
        assert "demo" in text
        assert "alpha" in text
        assert "20,000" in text

    def test_row_arity_checked(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("demo", [])

    def test_rows_accessor_copies(self):
        table = Table("demo", ["a"])
        table.add_row(1)
        rows = table.rows
        rows[0][0] = "mutated"
        assert table.rows[0][0] == "1"

    def test_fmt_ratio(self):
        assert fmt_ratio(1.351) == "1.35x"

    def test_alignment(self):
        table = Table("demo", ["col"])
        table.add_row("a-very-long-cell-value")
        lines = table.render().splitlines()
        assert len(lines[1]) >= len("a-very-long-cell-value")
