"""Hierarchical MetricsRegistry: namespacing, histograms, providers."""

import pytest

from repro.metrics.registry import (
    MetricsRegistry,
    SnapshotProvider,
    flatten,
    nest,
)


class TestCounters:
    def test_incr_and_get(self):
        reg = MetricsRegistry()
        assert reg.incr("pool.hits") == 1
        assert reg.incr("pool.hits", 4) == 5
        assert reg.get("pool.hits") == 5

    def test_untouched_counter_is_zero(self):
        assert MetricsRegistry().get("nope") == 0

    def test_namespacing_nests_in_snapshot(self):
        reg = MetricsRegistry()
        reg.incr("device.dram.loads", 3)
        reg.incr("device.cxl.loads", 7)
        reg.incr("pool.hits", 11)
        snap = reg.snapshot()
        assert snap["device"]["dram"]["loads"] == 3
        assert snap["device"]["cxl"]["loads"] == 7
        assert snap["pool"]["hits"] == 11


class TestScoping:
    def test_scope_prefixes_names(self):
        reg = MetricsRegistry()
        scope = reg.scope("operator.TableScan")
        scope.incr("rows", 100)
        assert reg.get("operator.TableScan.rows") == 100

    def test_nested_scope(self):
        reg = MetricsRegistry()
        deep = reg.scope("a").scope("b")
        deep.incr("c")
        assert reg.get("a.b.c") == 1


class TestGauges:
    def test_plain_gauge(self):
        reg = MetricsRegistry()
        reg.set_gauge("pool.resident", 42)
        assert reg.gauge("pool.resident") == 42

    def test_live_gauge_resolved_at_snapshot(self):
        reg = MetricsRegistry()
        state = {"v": 1}
        reg.set_gauge("live", lambda: state["v"])
        assert reg.snapshot()["live"] == 1
        state["v"] = 9
        assert reg.snapshot()["live"] == 9


class TestHistograms:
    def test_percentiles(self):
        reg = MetricsRegistry()
        for value in range(1, 1001):
            reg.observe("latency_ns", float(value))
        snap = flatten(reg.snapshot())
        assert snap["latency_ns.count"] == 1000
        assert snap["latency_ns.min"] == 1.0
        assert snap["latency_ns.max"] == 1000.0
        # Log-bucketed histogram: percentiles are approximate.
        assert snap["latency_ns.p50"] == pytest.approx(500, rel=0.25)
        assert snap["latency_ns.p95"] == pytest.approx(950, rel=0.25)
        assert snap["latency_ns.p99"] == pytest.approx(990, rel=0.25)

    def test_empty_histogram_summarizes_as_zero_count(self):
        reg = MetricsRegistry()
        reg.histogram("empty")
        assert flatten(reg.snapshot())["empty.count"] == 0

    def test_get_or_create_returns_same_histogram(self):
        reg = MetricsRegistry()
        assert reg.histogram("h") is reg.histogram("h")


class TestProviders:
    class FakePool:
        def __init__(self, hits):
            self.hits = hits

        def snapshot(self):
            return {"hits": self.hits, "tier": {"dram": {"pages": 7}}}

    def test_provider_folded_in_lazily(self):
        reg = MetricsRegistry()
        pool = self.FakePool(hits=5)
        assert reg.register("pool", pool) == "pool"
        pool.hits = 99  # mutate after registration
        snap = reg.snapshot()
        assert snap["pool"]["hits"] == 99
        assert snap["pool"]["tier"]["dram"]["pages"] == 7

    def test_namespace_collision_gets_suffix(self):
        reg = MetricsRegistry()
        first = self.FakePool(1)
        second = self.FakePool(2)
        assert reg.register("pool", first) == "pool"
        assert reg.register("pool", second) == "pool.2"
        snap = reg.snapshot()
        assert snap["pool"]["hits"] == 1
        assert snap["pool"]["2"]["hits"] == 2

    def test_reregistering_same_provider_is_idempotent(self):
        reg = MetricsRegistry()
        pool = self.FakePool(1)
        assert reg.register("pool", pool) == "pool"
        assert reg.register("pool", pool) == "pool"

    def test_unregister(self):
        reg = MetricsRegistry()
        reg.register("pool", self.FakePool(1))
        reg.unregister("pool")
        assert "pool" not in reg.snapshot()

    def test_protocol_runtime_check(self):
        assert isinstance(self.FakePool(0), SnapshotProvider)
        assert not isinstance(object(), SnapshotProvider)


class TestReset:
    def test_reset_one(self):
        reg = MetricsRegistry()
        reg.incr("a", 5)
        reg.incr("b", 7)
        reg.reset("a")
        assert reg.get("a") == 0
        assert reg.get("b") == 7

    def test_reset_all_clears_instruments(self):
        reg = MetricsRegistry()
        reg.incr("a")
        reg.set_gauge("g", 1)
        reg.observe("h", 2.0)
        reg.reset()
        assert reg.flat_snapshot() == {}

    def test_reset_keeps_providers(self):
        reg = MetricsRegistry()
        reg.register("pool", TestProviders.FakePool(hits=3))
        reg.reset()
        assert reg.snapshot()["pool"]["hits"] == 3


class TestSnapshotIsolation:
    def test_mutating_snapshot_does_not_touch_registry(self):
        reg = MetricsRegistry()
        reg.incr("pool.hits", 5)
        snap = reg.snapshot()
        snap["pool"]["hits"] = 12345
        snap["pool"]["new"] = 1
        assert reg.get("pool.hits") == 5
        assert reg.snapshot()["pool"] == {"hits": 5}

    def test_snapshots_are_independent(self):
        reg = MetricsRegistry()
        reg.incr("x")
        first = reg.snapshot()
        reg.incr("x")
        assert first["x"] == 1
        assert reg.snapshot()["x"] == 2


class TestNestFlatten:
    def test_roundtrip(self):
        flat = {"a.b.c": 1, "a.b.d": 2, "e": 3}
        assert flatten(nest(flat)) == flat

    def test_leaf_and_prefix_collision(self):
        tree = nest({"a": 1, "a.b": 2})
        assert tree == {"a": {"_": 1, "b": 2}}
