"""Placement policies: OS paging vs DB cost-based vs static HTAP."""

import pytest

from repro import config
from repro.core.buffer import Tier, TieredBufferPool
from repro.core.placement import DbCostPolicy, OSPagingPolicy, StaticPolicy
from repro.errors import BufferPoolError
from repro.sim.interconnect import AccessPath
from repro.sim.memory import MemoryDevice


def make_pool(placement, dram=8, cxl=32):
    tiers = [
        Tier(name="dram",
             path=AccessPath(device=MemoryDevice(config.local_ddr5())),
             capacity_pages=dram),
        Tier(name="cxl",
             path=AccessPath(device=MemoryDevice(config.cxl_expander_ddr5())),
             capacity_pages=cxl),
    ]
    return TieredBufferPool(tiers=tiers, placement=placement)


class TestStaticPolicy:
    def test_classifier_places(self):
        pool = make_pool(StaticPolicy(lambda p: 0 if p < 100 else 1))
        pool.access(5)
        pool.access(200)
        assert pool.tier_of(5) == 0
        assert pool.tier_of(200) == 1

    def test_no_migration_ever(self):
        pool = make_pool(StaticPolicy(lambda p: 1))
        for _ in range(100):
            pool.access(1)  # heavily accessed but pinned to tier 1
        assert pool.tier_of(1) == 1
        assert pool.stats.migrations == 0

    def test_isolation_under_pressure(self):
        """OLAP pages (tier 1) must never push OLTP pages out of
        tier 0 — the Sec 3.1 HTAP property."""
        pool = make_pool(StaticPolicy(lambda p: 0 if p < 4 else 1),
                         dram=4, cxl=8)
        for page in range(4):
            pool.access(page)
        for page in range(100, 200):  # OLAP flood
            pool.access(page)
        for page in range(4):
            assert pool.tier_of(page) == 0

    def test_classifier_clamped(self):
        pool = make_pool(StaticPolicy(lambda _p: 99))
        pool.access(1)
        assert pool.tier_of(1) == 1  # clamped to last tier

    def test_unattached_policy_raises(self):
        policy = StaticPolicy(lambda _p: 0)
        with pytest.raises(BufferPoolError):
            policy.choose_admit_tier(1)


class TestOSPagingPolicy:
    def test_admits_to_fast_tier_first(self):
        pool = make_pool(OSPagingPolicy(), dram=4)
        pool.access(1)
        assert pool.tier_of(1) == 0

    def test_overflow_admits_to_slow_tier(self):
        pool = make_pool(OSPagingPolicy(check_interval=10**9), dram=2)
        for page in range(4):
            pool.access(page)
        assert pool.tier_of(3) == 1

    def test_demote_pass_keeps_headroom(self):
        policy = OSPagingPolicy(check_interval=50, sample_rate=1.0,
                                high_watermark=0.9, low_watermark=0.5)
        pool = make_pool(policy, dram=10, cxl=40)
        for page in range(10):
            pool.access(page)
        # Fill tier 0 and keep accessing to trigger the check pass.
        for _ in range(10):
            for page in range(10):
                pool.access(page)
        assert pool.tier_residents(0) <= 9

    def test_promote_pass_pulls_hot_pages_up(self):
        policy = OSPagingPolicy(check_interval=100, sample_rate=1.0,
                                promote_min_heat=2.0)
        pool = make_pool(policy, dram=8, cxl=32)
        # Overflow tier 0, then hammer a page stuck in tier 1.
        for page in range(10):
            pool.access(page)
        hot = next(iter(pool.resident_in(1)))
        for _ in range(300):
            pool.access(hot)
        assert pool.tier_of(hot) == 0

    def test_invalid_watermarks(self):
        with pytest.raises(BufferPoolError):
            OSPagingPolicy(high_watermark=0.5, low_watermark=0.9)


class TestDbCostPolicy:
    def test_scans_admitted_to_slow_tier(self):
        pool = make_pool(DbCostPolicy())
        pool.access(1, is_scan=True)
        assert pool.tier_of(1) == 1

    def test_point_accesses_admitted_fast(self):
        pool = make_pool(DbCostPolicy())
        pool.access(1)
        assert pool.tier_of(1) == 0

    def test_rebalance_promotes_hot_slow_pages(self):
        policy = DbCostPolicy(rebalance_interval=10**9)
        pool = make_pool(policy, dram=4, cxl=16)
        # Fill DRAM with soon-cold pages.
        for page in range(4):
            pool.access(page)
        # Hot page lands in CXL (scan admit), then gets hot.
        pool.access(100, is_scan=True)
        for _ in range(50):
            pool.access(100)
        moves = policy.rebalance()
        assert moves > 0
        assert pool.tier_of(100) == 0

    def test_rebalance_respects_pins(self):
        policy = DbCostPolicy(rebalance_interval=10**9)
        pool = make_pool(policy, dram=1, cxl=8)
        pool.access(1)
        pool.pin(1)
        pool.access(2, is_scan=True)
        for _ in range(50):
            pool.access(2)
        policy.rebalance()
        assert pool.tier_of(1) == 0  # pinned page stayed
        pool.unpin(1)

    def test_single_tier_rebalance_is_noop(self):
        tiers = [Tier(
            name="dram",
            path=AccessPath(device=MemoryDevice(config.local_ddr5())),
            capacity_pages=8,
        )]
        policy = DbCostPolicy()
        pool = TieredBufferPool(tiers=tiers, placement=policy)
        pool.access(1)
        assert policy.rebalance() == 0

    def test_beats_os_policy_on_skewed_reads(self):
        """The headline Sec 3.1 claim, in miniature."""
        from repro.workloads import YCSBConfig, ycsb_trace
        cfg = YCSBConfig(mix="C", num_pages=400, num_ops=6_000,
                         theta=0.99, think_ns=0)

        def run(policy):
            pool = make_pool(policy, dram=40, cxl=400)
            from repro.core.engine import ScaleUpEngine
            engine = ScaleUpEngine(pool)
            return engine.run(ycsb_trace(cfg))

        db = run(DbCostPolicy(rebalance_interval=500))
        os_ = run(OSPagingPolicy(check_interval=500))
        assert db.tier_hit_rates[0] >= os_.tier_hit_rates[0]
