"""Engine autoscaling over pooled memory (Sec 3.2 questions)."""

import pytest

from repro.core.autoscale import (
    Autoscaler,
    ExpanderScaler,
    QueryJob,
    bursty_jobs,
)
from repro.errors import ConfigError
from repro.units import ms, us


def steady_jobs(count=100, gap_ns=ms(1.0), service_ns=ms(0.4)):
    return [QueryJob(arrival_ns=i * gap_ns, service_ns=service_ns)
            for i in range(count)]


class TestConfiguration:
    def test_invalid_mode(self):
        with pytest.raises(ConfigError):
            Autoscaler(mode="lukewarm")

    def test_invalid_worker_bounds(self):
        with pytest.raises(ConfigError):
            Autoscaler(min_workers=0)
        with pytest.raises(ConfigError):
            Autoscaler(min_workers=8, max_workers=2)

    def test_empty_jobs_rejected(self):
        with pytest.raises(ConfigError):
            Autoscaler().run([])


class TestFixedFleet:
    def test_underloaded_fleet_never_waits(self):
        report = Autoscaler(mode="fixed", max_workers=8).run(
            steady_jobs())
        assert report.p95_wait_ns == 0.0
        assert report.spawns == 0
        assert report.peak_workers == 8

    def test_overloaded_fleet_queues(self):
        jobs = [QueryJob(arrival_ns=0.0, service_ns=ms(1.0))
                for _ in range(20)]
        report = Autoscaler(mode="fixed", max_workers=2).run(jobs)
        assert report.mean_wait_ns > 0
        assert report.jobs == 20


class TestElasticity:
    def test_warm_scaler_spawns_under_burst(self):
        report = Autoscaler(mode="warm", min_workers=1,
                            max_workers=16).run(bursty_jobs())
        assert report.spawns > 0
        assert report.peak_workers > 1

    def test_warm_scaler_retires_after_burst(self):
        report = Autoscaler(mode="warm", min_workers=1,
                            max_workers=16,
                            idle_retire_ns=ms(5.0)).run(bursty_jobs())
        assert report.retires > 0

    def test_warm_cheaper_than_fixed(self):
        jobs = bursty_jobs()
        fixed = Autoscaler(mode="fixed", max_workers=16).run(list(jobs))
        warm = Autoscaler(mode="warm", min_workers=2,
                          max_workers=16).run(list(jobs))
        assert warm.engine_seconds < fixed.engine_seconds

    def test_warm_beats_cold_on_latency(self):
        jobs = bursty_jobs()
        warm = Autoscaler(mode="warm", min_workers=2,
                          max_workers=16).run(list(jobs))
        cold = Autoscaler(mode="cold", min_workers=2,
                          max_workers=16).run(list(jobs))
        assert warm.p95_wait_ns < cold.p95_wait_ns
        assert warm.mean_wait_ns < cold.mean_wait_ns

    def test_cold_ramp_slows_first_jobs(self):
        scaler = Autoscaler(mode="cold", cold_ramp_jobs=10,
                            cold_penalty=4.0)
        worker = scaler._spawn(0.0)
        job = QueryJob(arrival_ns=0.0, service_ns=1_000.0)
        first = scaler._service_time(worker, job)
        worker.served = 5
        mid = scaler._service_time(worker, job)
        worker.served = 10
        done = scaler._service_time(worker, job)
        assert first == pytest.approx(4_000.0)
        assert first > mid > done
        assert done == pytest.approx(1_000.0)

    def test_warm_spawn_is_fast(self):
        scaler = Autoscaler(mode="warm", warm_spawn_ns=us(200))
        worker = scaler._spawn(1_000.0)
        assert worker.available_at_ns == pytest.approx(1_000.0 + us(200))
        assert worker.warm

    def test_max_workers_respected(self):
        report = Autoscaler(mode="warm", min_workers=1,
                            max_workers=3).run(bursty_jobs())
        assert report.peak_workers <= 3


class TestReports:
    def test_wait_percentiles(self):
        jobs = [QueryJob(arrival_ns=0.0, service_ns=ms(1.0))
                for _ in range(10)]
        report = Autoscaler(mode="fixed", max_workers=1).run(jobs)
        assert report.p95_wait_ns >= report.mean_wait_ns
        assert len(report.waits_ns) == 10

    def test_engine_seconds_positive(self):
        report = Autoscaler(mode="fixed", max_workers=2).run(
            steady_jobs(count=10))
        assert report.engine_seconds > 0


class TestBurstyJobs:
    def test_burst_density(self):
        jobs = bursty_jobs(duration_ms=100.0, burst_start_frac=0.4,
                           burst_end_frac=0.6)
        horizon = ms(100.0)
        in_burst = sum(1 for j in jobs
                       if 0.4 * horizon <= j.arrival_ns < 0.6 * horizon)
        outside = len(jobs) - in_burst
        # The 20% burst window should hold a disproportionate share.
        assert in_burst > outside / 2

    def test_deterministic(self):
        a = bursty_jobs(seed=4)
        b = bursty_jobs(seed=4)
        assert [j.arrival_ns for j in a] == [j.arrival_ns for j in b]

    def test_sorted_arrivals(self):
        arrivals = [j.arrival_ns for j in bursty_jobs()]
        assert arrivals == sorted(arrivals)


class TestExpanderScaler:
    def _scaler(self, **kwargs):
        defaults = dict(pages_per_expander=100, min_expanders=1,
                        max_expanders=3, cooldown_ns=us(1.0))
        defaults.update(kwargs)
        return ExpanderScaler(**defaults)

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            ExpanderScaler(pages_per_expander=0)
        with pytest.raises(ConfigError):
            ExpanderScaler(pages_per_expander=10, min_expanders=3,
                           max_expanders=2)
        with pytest.raises(ConfigError):
            ExpanderScaler(pages_per_expander=10,
                           scale_down_occupancy=1.5)

    def test_backlog_grows_one_expander_at_a_time(self):
        scaler = self._scaler()
        assert scaler.capacity_pages == 100
        assert scaler.decide(us(2.0), queued_pages=50,
                             leased_pages=100) == 2
        # Still backlogged, but inside the cooldown: no change.
        assert scaler.decide(us(2.5), queued_pages=50,
                             leased_pages=100) == 2
        assert scaler.decide(us(4.0), queued_pages=50,
                             leased_pages=150) == 3
        # At max_expanders, backlog can no longer grow the pool.
        assert scaler.decide(us(6.0), queued_pages=50,
                             leased_pages=250) == 3
        assert scaler.grows == 2
        assert scaler.capacity_pages == 300

    def test_idle_pool_shrinks_to_min(self):
        scaler = self._scaler(min_expanders=1, max_expanders=3)
        scaler.decide(us(2.0), queued_pages=10, leased_pages=90)
        scaler.decide(us(4.0), queued_pages=10, leased_pages=190)
        assert scaler.expanders == 3
        # Demand drains: shrink only while the smaller pool would stay
        # comfortably under-occupied, one expander per cooldown.
        assert scaler.decide(us(6.0), queued_pages=0,
                             leased_pages=40) == 2
        assert scaler.decide(us(8.0), queued_pages=0,
                             leased_pages=40) == 1
        assert scaler.decide(us(10.0), queued_pages=0,
                             leased_pages=40) == 1  # at min_expanders
        assert scaler.shrinks == 2

    def test_no_shrink_while_occupied_or_backlogged(self):
        scaler = self._scaler()
        scaler.decide(us(2.0), queued_pages=10, leased_pages=100)
        assert scaler.expanders == 2
        # 80 leased > 0.5 * 100-page smaller pool: keep both expanders.
        assert scaler.decide(us(4.0), queued_pages=0,
                             leased_pages=80) == 2
        # Backlog present (but below the grow threshold): never shrink,
        # even when under-occupied.
        scaler = self._scaler(scale_up_queued_pages=100)
        scaler.decide(us(2.0), queued_pages=200, leased_pages=100)
        assert scaler.expanders == 2
        assert scaler.decide(us(4.0), queued_pages=5,
                             leased_pages=10) == 2
