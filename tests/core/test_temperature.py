"""Temperature trackers: engine-exact vs OS-sampled."""

import pytest

from repro.core.temperature import ExactTracker, SampledTracker
from repro.errors import ConfigError


class TestExactTracker:
    def test_heat_accumulates(self):
        tracker = ExactTracker()
        for _ in range(5):
            tracker.record(1)
        assert tracker.heat(1) == pytest.approx(5.0)
        assert tracker.heat(2) == 0.0

    def test_hottest_and_coldest(self):
        tracker = ExactTracker()
        for page, count in ((1, 10), (2, 5), (3, 1)):
            for _ in range(count):
                tracker.record(page)
        assert tracker.hottest(2) == [1, 2]
        assert tracker.coldest(1) == [3]

    def test_decay_ages_heat(self):
        tracker = ExactTracker(decay=0.5, epoch_accesses=10)
        for _ in range(10):
            tracker.record(1)  # 10th access triggers aging
        assert tracker.heat(1) == pytest.approx(5.0)

    def test_decay_forgets_cold_pages(self):
        tracker = ExactTracker(decay=0.5, epoch_accesses=2)
        tracker.record(1)
        for _ in range(60):
            tracker.record(2)
        assert tracker.heat(1) == 0.0  # decayed below threshold

    def test_scan_discount(self):
        """The engine knows scans: a swept page stays colder than a
        point-accessed one (the OS cannot make this distinction)."""
        tracker = ExactTracker(scan_weight=0.1)
        tracker.record(1)
        tracker.record(2, is_scan=True)
        assert tracker.heat(2) == pytest.approx(0.1)
        assert tracker.heat(1) > tracker.heat(2)

    def test_forget(self):
        tracker = ExactTracker()
        tracker.record(1)
        tracker.forget(1)
        assert tracker.heat(1) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            ExactTracker(decay=0.0)
        with pytest.raises(ConfigError):
            ExactTracker(epoch_accesses=0)
        with pytest.raises(ConfigError):
            ExactTracker(scan_weight=-1.0)


class TestSampledTracker:
    def test_sampling_misses_most_accesses(self):
        tracker = SampledTracker(sample_rate=0.01, seed=1)
        for _ in range(1_000):
            tracker.record(1)
        # ~10 expected observations, far below the exact count.
        assert 0 < tracker.heat(1) < 100

    def test_full_sampling_equals_exact(self):
        tracker = SampledTracker(sample_rate=1.0)
        for _ in range(50):
            tracker.record(1)
        assert tracker.heat(1) == pytest.approx(50.0)

    def test_scan_blindness(self):
        """The OS cannot distinguish scans: is_scan changes nothing."""
        t1 = SampledTracker(sample_rate=1.0, seed=3)
        t2 = SampledTracker(sample_rate=1.0, seed=3)
        for _ in range(20):
            t1.record(1, is_scan=True)
            t2.record(1, is_scan=False)
        assert t1.heat(1) == t2.heat(1)

    def test_hot_pages_still_rank_first(self):
        tracker = SampledTracker(sample_rate=0.2, seed=7)
        for _ in range(2_000):
            tracker.record(1)
        for _ in range(100):
            tracker.record(2)
        assert tracker.hottest(1) == [1]

    def test_deterministic_with_seed(self):
        t1 = SampledTracker(sample_rate=0.5, seed=42)
        t2 = SampledTracker(sample_rate=0.5, seed=42)
        for _ in range(100):
            t1.record(1)
            t2.record(1)
        assert t1.heat(1) == t2.heat(1)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            SampledTracker(sample_rate=0.0)
        with pytest.raises(ConfigError):
            SampledTracker(decay=1.5)

    def test_forget(self):
        tracker = SampledTracker(sample_rate=1.0)
        tracker.record(1)
        tracker.forget(1)
        assert tracker.heat(1) == 0.0
