"""Rack-level morsel scheduling (Sec 3.3 scheduling question)."""

import pytest

from repro.core.morsel import Morsel, RackScheduler, skewed_queries
from repro.errors import ConfigError


def uniform_queries(num_queries=2, morsels=100, service=10_000.0):
    return [
        [Morsel(query_id=q, service_ns=service) for _ in range(morsels)]
        for q in range(num_queries)
    ]


class TestConfiguration:
    def test_invalid_geometry(self):
        with pytest.raises(ConfigError):
            RackScheduler(hosts=0)
        with pytest.raises(ConfigError):
            RackScheduler(threads_per_host=0)
        with pytest.raises(ConfigError):
            RackScheduler(dequeue_cost_ns=-1.0)

    def test_empty_queries_rejected(self):
        scheduler = RackScheduler()
        with pytest.raises(ConfigError):
            scheduler.run_static([])
        with pytest.raises(ConfigError):
            scheduler.run_shared_queue([[]])

    def test_unknown_policy(self):
        with pytest.raises(ConfigError):
            RackScheduler().run_shared_queue(uniform_queries(),
                                             policy="magic")


class TestWorkConservation:
    def test_all_morsels_complete(self):
        scheduler = RackScheduler(hosts=2, threads_per_host=4)
        queries = uniform_queries()
        static = scheduler.run_static(queries)
        shared = scheduler.run_shared_queue(queries)
        assert set(static.query_completion_ns) == {0, 1}
        assert set(shared.query_completion_ns) == {0, 1}

    def test_total_work_bounds_makespan(self):
        scheduler = RackScheduler(hosts=2, threads_per_host=2,
                                  dequeue_cost_ns=0.0)
        queries = uniform_queries(num_queries=1, morsels=64)
        outcome = scheduler.run_shared_queue(queries)
        total_work = 64 * 10_000.0
        assert outcome.makespan_ns >= total_work / 4
        assert outcome.makespan_ns <= total_work

    def test_uniform_load_balances_perfectly(self):
        scheduler = RackScheduler(hosts=2, threads_per_host=2,
                                  dequeue_cost_ns=0.0)
        outcome = scheduler.run_shared_queue(
            uniform_queries(num_queries=1, morsels=64))
        assert outcome.idle_ns == pytest.approx(0.0)


class TestStealingVsStatic:
    def test_stealing_wins_under_skew(self):
        """The Sec 3.3 answer: a shared coherent queue absorbs skew
        that static partitioning cannot."""
        scheduler = RackScheduler(hosts=4, threads_per_host=8)
        queries = skewed_queries()
        static = scheduler.run_static(queries)
        shared = scheduler.run_shared_queue(queries)
        assert shared.makespan_ns < static.makespan_ns
        assert shared.idle_ns < static.idle_ns

    def test_queue_overhead_accounted(self):
        scheduler = RackScheduler(dequeue_cost_ns=330.0)
        queries = uniform_queries(num_queries=1, morsels=50)
        outcome = scheduler.run_shared_queue(queries)
        assert outcome.queue_overhead_ns == pytest.approx(50 * 330.0)

    def test_free_queue_beats_costly_queue(self):
        queries = skewed_queries(num_queries=1)
        free = RackScheduler(dequeue_cost_ns=0.0).run_shared_queue(
            [list(q) for q in queries])
        costly = RackScheduler(dequeue_cost_ns=5_000.0).run_shared_queue(
            [list(q) for q in queries])
        assert free.makespan_ns < costly.makespan_ns


class TestMultiQueryPolicies:
    def test_fair_improves_mean_completion(self):
        """Round-robin lets every query finish near the same time it
        would alone; FIFO makes later queries wait for earlier ones."""
        scheduler = RackScheduler(hosts=2, threads_per_host=4)
        queries = skewed_queries(num_queries=4)
        fifo = scheduler.run_shared_queue(
            [list(q) for q in queries], policy="fifo")
        fair = scheduler.run_shared_queue(
            [list(q) for q in queries], policy="fair")
        # FIFO: the first query finishes earliest of all.
        assert fifo.query_completion_ns[0] < \
            fifo.query_completion_ns[3]
        # Fair: completions cluster; the spread shrinks a lot.
        fifo_spread = (max(fifo.query_completion_ns.values())
                       - min(fifo.query_completion_ns.values()))
        fair_spread = (max(fair.query_completion_ns.values())
                       - min(fair.query_completion_ns.values()))
        assert fair_spread < fifo_spread / 2

    def test_policies_share_makespan(self):
        scheduler = RackScheduler(hosts=2, threads_per_host=4)
        queries = skewed_queries(num_queries=3)
        fifo = scheduler.run_shared_queue(
            [list(q) for q in queries], policy="fifo")
        fair = scheduler.run_shared_queue(
            [list(q) for q in queries], policy="fair")
        assert fair.makespan_ns == pytest.approx(fifo.makespan_ns,
                                                 rel=0.05)


class TestSkewedQueries:
    def test_shape(self):
        queries = skewed_queries(num_queries=3, morsels_per_query=50)
        assert len(queries) == 3
        assert all(len(q) == 50 for q in queries)

    def test_heavy_tail_exists(self):
        queries = skewed_queries(morsels_per_query=1_000)
        services = [m.service_ns for m in queries[0]]
        assert max(services) > 4 * (sum(services) / len(services))

    def test_deterministic(self):
        a = skewed_queries(seed=1)
        b = skewed_queries(seed=1)
        assert a == b

    def test_invalid(self):
        with pytest.raises(ConfigError):
            skewed_queries(num_queries=0)
