"""The ScaleUpEngine facade and its reports."""

import pytest

from repro import config
from repro.core.engine import EngineReport, ScaleUpEngine
from repro.core.placement import StaticPolicy
from repro.errors import ConfigError
from repro.workloads import Access, YCSBConfig, ycsb_trace


class TestBuild:
    def test_dram_only(self):
        engine = ScaleUpEngine.build(dram_pages=100, with_storage=False)
        assert len(engine.pool.tiers) == 1

    def test_dram_plus_cxl(self):
        engine = ScaleUpEngine.build(dram_pages=100, cxl_pages=400,
                                     with_storage=False)
        assert [t.name for t in engine.pool.tiers] == ["dram", "cxl"]

    def test_switch_adds_latency(self):
        direct = ScaleUpEngine.build(dram_pages=1, cxl_pages=10,
                                     with_storage=False)
        switched = ScaleUpEngine.build(dram_pages=1, cxl_pages=10,
                                       through_switch=True,
                                       with_storage=False)
        assert (switched.pool.tiers[1].path.read_latency_ns()
                > direct.pool.tiers[1].path.read_latency_ns())

    def test_storage_backing_by_default(self):
        engine = ScaleUpEngine.build(dram_pages=10)
        assert engine.pool.backing is not None

    def test_zero_dram_rejected(self):
        with pytest.raises(ConfigError):
            ScaleUpEngine.build(dram_pages=0)

    def test_custom_cxl_spec(self):
        engine = ScaleUpEngine.build(
            dram_pages=10, cxl_pages=10,
            cxl_spec=config.cxl_expander_hbm(), with_storage=False,
        )
        assert engine.pool.tiers[1].path.device.kind is \
            config.MemoryKind.CXL_HBM


class TestRun:
    def test_report_counts_ops(self):
        engine = ScaleUpEngine.build(dram_pages=100, with_storage=False)
        trace = [Access(page_id=i % 10) for i in range(100)]
        report = engine.run(trace)
        assert report.ops == 100
        assert report.total_ns > 0
        assert report.misses == 10

    def test_think_time_included_in_total(self):
        engine = ScaleUpEngine.build(dram_pages=10, with_storage=False)
        trace = [Access(page_id=0, think_ns=1_000.0) for _ in range(10)]
        report = engine.run(trace)
        assert report.think_ns == pytest.approx(10_000.0)
        assert report.total_ns >= report.think_ns

    def test_hit_rate(self):
        engine = ScaleUpEngine.build(dram_pages=10, with_storage=False)
        trace = [Access(page_id=0)] * 9 + [Access(page_id=1)]
        report = engine.run(trace)
        assert report.hit_rate == pytest.approx(0.8)

    def test_throughput_positive(self):
        engine = ScaleUpEngine.build(dram_pages=10, with_storage=False)
        report = engine.run([Access(page_id=0)] * 10)
        assert report.throughput_ops_per_s > 0

    def test_mean_latency(self):
        engine = ScaleUpEngine.build(dram_pages=10, with_storage=False)
        report = engine.run([Access(page_id=0)] * 10)
        assert report.mean_latency_ns == pytest.approx(
            report.demand_ns / 10
        )

    def test_sequential_runs_accumulate_independent_reports(self):
        engine = ScaleUpEngine.build(dram_pages=10, with_storage=False)
        r1 = engine.run([Access(page_id=0)] * 5)
        r2 = engine.run([Access(page_id=0)] * 5)
        assert r1.ops == r2.ops == 5
        assert r2.misses == 0  # warm now

    def test_slowdown_vs(self):
        engine = ScaleUpEngine.build(dram_pages=10, with_storage=False)
        base = engine.run([Access(page_id=0)] * 10)
        slow = EngineReport(name="x", ops=10, total_ns=base.total_ns * 2)
        assert slow.slowdown_vs(base) == pytest.approx(2.0)
        with pytest.raises(ConfigError):
            base.slowdown_vs(EngineReport(name="zero"))

    def test_warm_with_populates(self):
        engine = ScaleUpEngine.build(dram_pages=100, with_storage=False)
        engine.warm_with(Access(page_id=i) for i in range(50))
        report = engine.run([Access(page_id=i) for i in range(50)])
        assert report.misses == 0

    def test_empty_trace(self):
        engine = ScaleUpEngine.build(dram_pages=10, with_storage=False)
        report = engine.run([])
        assert report.ops == 0
        assert report.mean_latency_ns == 0.0
        assert report.throughput_ops_per_s == 0.0

    def test_report_str_is_informative(self):
        engine = ScaleUpEngine.build(dram_pages=10, with_storage=False,
                                     name="mine")
        report = engine.run([Access(page_id=0)] * 3)
        text = str(report)
        assert "mine" in text
        assert "ops=3" in text


class TestCXLLatencySensitivity:
    def test_all_cxl_slower_than_all_dram(self):
        cfg = YCSBConfig(mix="C", num_pages=200, num_ops=2_000,
                         think_ns=0)
        dram = ScaleUpEngine.build(dram_pages=300, with_storage=False)
        cxl = ScaleUpEngine.build(
            dram_pages=1, cxl_pages=300,
            placement=StaticPolicy(lambda _p: 1), with_storage=False,
        )
        r_dram = dram.run(ycsb_trace(cfg))
        r_cxl = cxl.run(ycsb_trace(cfg))
        slowdown = r_cxl.slowdown_vs(r_dram)
        # Point lookups: CXL latency ratio ~2.4x.
        assert 1.5 < slowdown < 3.5

    def test_compute_bound_workload_barely_slows(self):
        cfg = YCSBConfig(mix="C", num_pages=200, num_ops=1_000,
                         think_ns=10_000.0)
        dram = ScaleUpEngine.build(dram_pages=300, with_storage=False)
        cxl = ScaleUpEngine.build(
            dram_pages=1, cxl_pages=300,
            placement=StaticPolicy(lambda _p: 1), with_storage=False,
        )
        r_dram = dram.run(ycsb_trace(cfg))
        r_cxl = cxl.run(ycsb_trace(cfg))
        assert r_cxl.slowdown_vs(r_dram) < 1.05  # Pond's <5% class
