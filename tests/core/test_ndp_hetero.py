"""Near-data processing (Sec 4) and heterogeneous pooling (Sec 5)."""

import pytest

from repro import config
from repro.core.hetero import (
    ComposableRack,
    FixedServerRack,
    OperatorTask,
    mixed_workload,
)
from repro.core.ndp import ActiveMemoryRegion, NDPController
from repro.errors import ConfigError
from repro.sim.interconnect import AccessPath, Link
from repro.sim.memory import MemoryDevice


@pytest.fixture
def controller() -> NDPController:
    device = MemoryDevice(config.cxl_expander_ddr5())
    path = AccessPath(device=device, links=(Link(config.cxl_port()),))
    return NDPController(path)


class TestOperatorOffload:
    def test_offload_wins_at_low_selectivity(self, controller):
        host = controller.host_filter_time(10_000, selectivity=0.01)
        ndp = controller.offload_filter_time(10_000, selectivity=0.01)
        assert ndp.time_ns < host.time_ns

    def test_offload_ships_fewer_bytes(self, controller):
        host = controller.host_filter_time(1_000, selectivity=0.05)
        ndp = controller.offload_filter_time(1_000, selectivity=0.05)
        assert ndp.fabric_bytes < host.fabric_bytes / 10

    def test_high_selectivity_narrows_the_win(self, controller):
        low = (controller.host_filter_time(10_000, 0.01).time_ns
               / controller.offload_filter_time(10_000, 0.01).time_ns)
        high = (controller.host_filter_time(10_000, 1.0).time_ns
                / controller.offload_filter_time(10_000, 1.0).time_ns)
        assert low > high

    def test_aggregate_ships_one_line(self, controller):
        result = controller.offload_aggregate_time(10_000)
        assert result.fabric_bytes == 64

    def test_parallel_beats_either_side_alone(self, controller):
        pages, sel = 20_000, 0.1
        host_only = controller.host_filter_time(pages, sel).time_ns
        ndp_only = controller.offload_filter_time(pages, sel).time_ns
        best_fraction = controller.best_host_fraction(pages, sel)
        both = controller.parallel_filter_time(
            pages, sel, best_fraction).time_ns
        assert both <= min(host_only, ndp_only)

    def test_parallel_requires_valid_fraction(self, controller):
        with pytest.raises(ConfigError):
            controller.parallel_filter_time(100, 0.1, host_fraction=1.5)

    def test_invalid_arguments(self, controller):
        with pytest.raises(ConfigError):
            controller.host_filter_time(0, 0.5)
        with pytest.raises(ConfigError):
            controller.offload_filter_time(10, 1.5)


class TestActiveMemoryRegion:
    def _region(self, **kwargs):
        device = MemoryDevice(config.cxl_expander_ddr5())
        path = AccessPath(device=device, links=(Link(config.cxl_port()),))
        return ActiveMemoryRegion(path, view_bytes=64 * 1024 * 1024,
                                  **kwargs)

    def test_streaming_beats_materialization(self):
        region = self._region()
        assert (region.streaming_read_time()
                < region.materialized_read_time())

    def test_partial_read_of_materialized_view_still_pays_production(self):
        region = self._region()
        partial_stream = region.streaming_read_time(1024)
        partial_mat = region.materialized_read_time(1024)
        # Materialization produces the WHOLE view before serving 1 KiB.
        assert partial_mat > 100 * partial_stream

    def test_expansion_slows_production(self):
        cheap = self._region(expansion=1.0)
        costly = self._region(expansion=8.0)
        assert (costly.streaming_read_time()
                > cheap.streaming_read_time())

    def test_invalid_sizes(self):
        region = self._region()
        with pytest.raises(ConfigError):
            region.streaming_read_time(0)
        with pytest.raises(ConfigError):
            region.streaming_read_time(region.view_bytes + 1)


class TestHeterogeneousRacks:
    def test_composable_beats_fixed_on_mixed_load(self):
        tasks = mixed_workload(num_tasks=200)
        pooled = ComposableRack().schedule(tasks)
        fixed = FixedServerRack().schedule(mixed_workload(num_tasks=200))
        assert pooled.mean_completion_ns < fixed.mean_completion_ns

    def test_ml_tasks_land_on_gpus(self):
        rack = ComposableRack(gpus=2, fpgas=2, dpus=0, cpus=2)
        tasks = [OperatorTask("ml_infer", 64 * 1024 * 1024)
                 for _ in range(8)]
        rack.schedule(tasks)
        gpu_runs = sum(d.tasks_run for d in rack.devices
                       if d.klass.value == "gpu")
        assert gpu_runs == 8

    def test_queueing_spills_to_second_best(self):
        rack = ComposableRack(gpus=1, fpgas=1, dpus=0, cpus=1)
        tasks = [OperatorTask("ml_infer", 256 * 1024 * 1024)
                 for _ in range(12)]
        rack.schedule(tasks)
        non_gpu_runs = sum(d.tasks_run for d in rack.devices
                           if d.klass.value != "gpu")
        assert non_gpu_runs > 0

    def test_unschedulable_tasks_counted(self):
        rack = ComposableRack(gpus=1, fpgas=0, dpus=0, cpus=0)
        report = rack.schedule([OperatorTask("compress", 1024)])
        assert report.unschedulable == 1

    def test_fixed_rack_local_only(self):
        rack = FixedServerRack(num_servers=2, gpus_every=0,
                               fpgas_every=0)
        report = rack.schedule([OperatorTask("ml_infer", 1024 * 1024)])
        # Only CPUs available locally: runs, but slowly.
        assert report.tasks == 1

    def test_utilization_accounting(self):
        rack = ComposableRack(gpus=1, fpgas=0, dpus=0, cpus=0)
        report = rack.schedule([OperatorTask("ml_infer", 1024 * 1024)])
        device = rack.devices[0]
        assert device.utilization(report.makespan_ns) > 0

    def test_empty_rack_rejected(self):
        with pytest.raises(ConfigError):
            ComposableRack(gpus=0, fpgas=0, dpus=0, cpus=0)
