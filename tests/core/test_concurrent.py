"""Contended multi-threaded execution (access_at / run_concurrent)."""

import random

import pytest

from repro import config
from repro.core import ScaleUpEngine, StaticPolicy
from repro.core.buffer import Tier, TieredBufferPool
from repro.errors import ConfigError
from repro.sim.interconnect import AccessPath, Link
from repro.sim.memory import MemoryDevice
from repro.workloads import Access


def cxl_engine(pages=2_000):
    engine = ScaleUpEngine.build(
        dram_pages=1, cxl_pages=pages,
        placement=StaticPolicy(lambda _p: 1), with_storage=False,
    )
    for page in range(pages - 8):
        engine.pool.access(page)  # warm
    return engine


def point_trace(seed, ops=500, pages=1_000, think_ns=100.0):
    rng = random.Random(seed)
    return [Access(page_id=rng.randrange(pages), think_ns=think_ns)
            for _ in range(ops)]


def readahead_scan(first_page, num_pages, repeats=1,
                   chunk_pages=16):
    """A scanning thread with readahead: one 64 KiB request per 16
    pages, the way real sequential readers drive a device."""
    out = []
    for _ in range(repeats):
        for start in range(0, num_pages, chunk_pages):
            out.append(Access(
                page_id=first_page + start, is_scan=True,
                nbytes=chunk_pages * 4096, think_ns=0.0,
            ))
    return out


class TestAccessAt:
    def test_completion_after_issue(self):
        engine = cxl_engine()
        done = engine.pool.access_at(0, now_ns=1_000.0)
        assert done > 1_000.0

    def test_back_to_back_transfers_queue(self):
        engine = cxl_engine()
        big = 1024 * 1024
        first = engine.pool.access_at(0, 0.0, nbytes=big)
        second = engine.pool.access_at(1, 0.0, nbytes=big)
        assert second > first

    def test_fault_path_counts_miss(self):
        engine = ScaleUpEngine.build(dram_pages=8, with_storage=False)
        before = engine.pool.stats.misses
        engine.pool.access_at(0, 0.0)
        assert engine.pool.stats.misses == before + 1
        # Second access hits.
        engine.pool.access_at(0, 0.0)
        assert engine.pool.stats.misses == before + 1

    def test_idle_device_no_queueing(self):
        engine = cxl_engine()
        engine.pool.access_at(0, 0.0)
        late = engine.pool.access_at(1, 1e9)
        assert late - 1e9 < 1_000.0  # no residual queueing


class TestRunConcurrent:
    def test_empty_rejected(self):
        engine = cxl_engine()
        with pytest.raises(ConfigError):
            engine.run_concurrent([])

    def test_all_ops_executed(self):
        engine = cxl_engine()
        traces = [point_trace(s, ops=200) for s in range(3)]
        report = engine.run_concurrent(traces)
        assert report.ops == 600
        assert report.threads == 3
        assert all(count == 200
                   for count in report.per_thread_ops.values())

    def test_think_time_overlaps_across_threads(self):
        """With long think times, N threads finish in ~the same
        wall-clock as one thread (compute overlaps)."""
        engine = cxl_engine()
        one = cxl_engine().run_concurrent(
            [point_trace(0, ops=300, think_ns=5_000.0)])
        four = engine.run_concurrent(
            [point_trace(s, ops=300, think_ns=5_000.0)
             for s in range(4)])
        assert four.makespan_ns < 1.5 * one.makespan_ns
        assert four.ops == 4 * one.ops

    def test_scan_threads_inflate_point_latency(self):
        """Bandwidth interference: OLAP scans on the same expander
        raise point-lookup tail latency."""
        quiet = cxl_engine(pages=8_000)
        alone = quiet.run_concurrent(
            [point_trace(s, pages=1_000) for s in range(2)])

        noisy = cxl_engine(pages=8_000)
        scans = [readahead_scan(1_000, 3_000, repeats=4)
                 for _ in range(3)]
        mixed = noisy.run_concurrent(
            [point_trace(s, pages=1_000) for s in range(2)] + scans)
        assert mixed.p95_for((0, 1)) > 1.3 * alone.p95_for((0, 1))

    def test_separate_devices_remove_interference(self):
        """Two expanders (OLTP on one, OLAP on the other) restore
        point-lookup latency: bandwidth-level HTAP isolation."""
        def build_two_expander_engine():
            tiers = [
                Tier("dram", AccessPath(
                    device=MemoryDevice(config.local_ddr5())), 1),
                Tier("cxl-oltp", AccessPath(
                    device=MemoryDevice(config.cxl_expander_ddr5(),
                                        name="oltp-exp"),
                    links=(Link(config.cxl_port()),)), 2_000),
                Tier("cxl-olap", AccessPath(
                    device=MemoryDevice(config.cxl_expander_ddr5(),
                                        name="olap-exp"),
                    links=(Link(config.cxl_port()),)), 6_000),
            ]
            pool = TieredBufferPool(
                tiers=tiers,
                placement=StaticPolicy(
                    lambda p: 1 if p < 1_000 else 2),
            )
            engine = ScaleUpEngine(pool)
            for page in range(4_000):
                pool.access(page)
            return engine

        shared = cxl_engine(pages=8_000)
        scans = [readahead_scan(1_000, 3_000, repeats=4)
                 for _ in range(3)]
        mixed_shared = shared.run_concurrent(
            [point_trace(s, pages=1_000) for s in range(2)]
            + [list(s) for s in scans])

        isolated = build_two_expander_engine()
        mixed_isolated = isolated.run_concurrent(
            [point_trace(s, pages=1_000) for s in range(2)]
            + [list(s) for s in scans])
        assert mixed_isolated.p95_for((0, 1)) < \
            0.8 * mixed_shared.p95_for((0, 1))

    def test_report_metrics(self):
        engine = cxl_engine()
        report = engine.run_concurrent([point_trace(0, ops=100)])
        assert report.mean_latency_ns > 0
        assert report.p95_latency_ns >= report.mean_latency_ns * 0.5
        assert report.throughput_ops_per_s > 0
