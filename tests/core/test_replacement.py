"""Eviction policies: LRU, CLOCK, 2Q, LRU-K."""

import pytest

from repro.core.replacement import (
    POLICIES,
    ClockPolicy,
    LRUKPolicy,
    LRUPolicy,
    TwoQPolicy,
    make_policy,
)
from repro.errors import BufferPoolError

ALL_POLICIES = sorted(POLICIES)


@pytest.mark.parametrize("name", ALL_POLICIES)
class TestCommonBehaviour:
    """Contract every policy honors."""

    def test_insert_then_victim(self, name):
        policy = make_policy(name)
        policy.record_insert(1)
        assert policy.victim() == 1

    def test_remove_untracks(self, name):
        policy = make_policy(name)
        policy.record_insert(1)
        policy.remove(1)
        assert policy.victim() is None
        assert len(policy) == 0

    def test_remove_is_idempotent(self, name):
        policy = make_policy(name)
        policy.record_insert(1)
        policy.remove(1)
        policy.remove(1)  # must not raise

    def test_duplicate_insert_rejected(self, name):
        policy = make_policy(name)
        policy.record_insert(1)
        with pytest.raises(BufferPoolError):
            policy.record_insert(1)

    def test_access_to_untracked_rejected(self, name):
        with pytest.raises(BufferPoolError):
            make_policy(name).record_access(42)

    def test_pinned_pages_skipped(self, name):
        policy = make_policy(name)
        for key in (1, 2, 3):
            policy.record_insert(key)
        victim = policy.victim(pinned=lambda k: k != 3)
        assert victim == 3

    def test_all_pinned_returns_none(self, name):
        policy = make_policy(name)
        policy.record_insert(1)
        policy.record_insert(2)
        assert policy.victim(pinned=lambda _k: True) is None

    def test_len_tracks_population(self, name):
        policy = make_policy(name)
        for key in range(5):
            policy.record_insert(key)
        assert len(policy) == 5

    def test_victim_is_tracked_member(self, name):
        policy = make_policy(name)
        keys = list(range(10))
        for key in keys:
            policy.record_insert(key)
        for key in (2, 4, 6):
            policy.record_access(key)
        assert policy.victim() in keys


class TestLRUSpecifics:
    def test_evicts_least_recent(self):
        policy = LRUPolicy()
        for key in (1, 2, 3):
            policy.record_insert(key)
        policy.record_access(1)
        assert policy.victim() == 2

    def test_access_refreshes(self):
        policy = LRUPolicy()
        for key in (1, 2):
            policy.record_insert(key)
        policy.record_access(1)
        policy.record_access(2)
        assert policy.victim() == 1


class TestClockSpecifics:
    def test_second_chance(self):
        policy = ClockPolicy()
        for key in (1, 2, 3):
            policy.record_insert(key)
        # All referenced: the sweep clears 1's bit first, so 1 is
        # evicted on the second pass.
        assert policy.victim() == 1

    def test_referenced_page_survives_one_sweep(self):
        policy = ClockPolicy()
        for key in (1, 2):
            policy.record_insert(key)
        policy.victim()           # sweeps, returns a victim
        policy.record_access(2)   # re-reference 2
        assert policy.victim() != 2 or len(policy) == 1


class TestTwoQSpecifics:
    def test_scan_resistance(self):
        """One-shot insertions must not displace the re-referenced set."""
        policy = TwoQPolicy(probation_fraction=0.5)
        for key in (1, 2):
            policy.record_insert(key)
            policy.record_access(key)  # promoted to Am
        for scan_key in range(100, 110):
            policy.record_insert(scan_key)
            victim = policy.victim()
            # Victims come from the scan (probation), not the hot set.
            assert victim not in (1, 2)
            policy.remove(victim)

    def test_rereference_promotes(self):
        policy = TwoQPolicy()
        policy.record_insert(1)
        policy.record_access(1)   # now in Am
        policy.record_insert(2)   # probation
        assert policy.victim() == 2

    def test_invalid_fraction(self):
        with pytest.raises(BufferPoolError):
            TwoQPolicy(probation_fraction=0.0)


class TestLRUKSpecifics:
    def test_single_reference_pages_evicted_first(self):
        policy = LRUKPolicy(k=2)
        policy.record_insert(1)
        policy.record_access(1)   # 1 has two references
        policy.record_insert(2)   # 2 has one
        assert policy.victim() == 2

    def test_oldest_kth_reference_loses(self):
        policy = LRUKPolicy(k=2)
        for key in (1, 2):
            policy.record_insert(key)
            policy.record_access(key)
        # refs: 1 -> (t1, t2), 2 -> (t3, t4); another access to 1
        # leaves its 2nd-most-recent at t2, still older than 2's t3,
        # so 1 has the larger backward-K distance and is evicted.
        policy.record_access(1)
        assert policy.victim() == 1

    def test_invalid_k(self):
        with pytest.raises(BufferPoolError):
            LRUKPolicy(k=0)


class TestFactory:
    def test_unknown_name(self):
        with pytest.raises(BufferPoolError):
            make_policy("nonsense")

    def test_all_names_construct(self):
        for name in ALL_POLICIES:
            assert make_policy(name) is not None
