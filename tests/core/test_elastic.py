"""Pooling and elasticity (Sec 3.2): stranding, warm spawn, migration."""

import pytest

from repro.core.elastic import ElasticCluster, PagePool, StrandingModel
from repro.errors import PoolingError
from repro.units import GIB
from repro.workloads import Access


class TestStrandingModel:
    def _model(self):
        return StrandingModel(
            demands_bytes=[10 * GIB, 60 * GIB, 25 * GIB, 5 * GIB],
            per_server_dram=64 * GIB,
            base_dram=16 * GIB,
        )

    def test_stranded_bytes(self):
        model = self._model()
        expected = (54 + 4 + 39 + 59) * GIB
        assert model.stranded_bytes == expected

    def test_stranded_fraction_substantial(self):
        # Hyperscaler-like demand skew strands a large share (Sec 3.2).
        assert self._model().stranded_fraction > 0.5

    def test_pooling_saves_memory(self):
        model = self._model()
        assert model.pooled_total_bytes < model.provisioned_bytes
        assert model.savings_fraction > 0.3

    def test_unmet_demand(self):
        model = StrandingModel(
            demands_bytes=[100 * GIB], per_server_dram=64 * GIB,
            base_dram=16 * GIB,
        )
        assert model.unmet_bytes == 36 * GIB

    def test_uniform_demand_strands_little(self):
        model = StrandingModel(
            demands_bytes=[60 * GIB] * 8, per_server_dram=64 * GIB,
            base_dram=16 * GIB,
        )
        assert model.stranded_fraction < 0.1

    def test_empty_demands_rejected(self):
        with pytest.raises(PoolingError):
            StrandingModel(demands_bytes=[], per_server_dram=1,
                           base_dram=0)


class TestSlices:
    def test_carve_and_release(self):
        cluster = ElasticCluster(dataset_pages=100)
        slice_ = cluster.carve("e1", 1024 * 4096)
        assert cluster.pool_device.allocated_bytes == 1024 * 4096
        assert cluster.slice_of("e1") is slice_
        cluster.release("e1")
        assert cluster.pool_device.allocated_bytes == 0

    def test_double_carve_rejected(self):
        cluster = ElasticCluster(dataset_pages=100)
        cluster.carve("e1", 4096)
        with pytest.raises(PoolingError):
            cluster.carve("e1", 4096)

    def test_release_unknown_rejected(self):
        with pytest.raises(PoolingError):
            ElasticCluster(dataset_pages=10).release("ghost")


class TestWarmSpawn:
    def _trace(self, pages=200, ops=2_000):
        import random
        rng = random.Random(3)
        return [Access(page_id=rng.randrange(pages)) for _ in range(ops)]

    def test_cold_engine_faults_everything(self):
        cluster = ElasticCluster(dataset_pages=200)
        engine, _spawn = cluster.spawn_engine("cold", local_pages=32,
                                              slice_pages=256)
        report = engine.run(self._trace())
        assert report.misses == 200

    def test_warm_engine_has_no_faults(self):
        cluster = ElasticCluster(dataset_pages=200)
        first, _ = cluster.spawn_engine("first", local_pages=32,
                                        slice_pages=256)
        first.run(self._trace())
        slice_ = cluster.detach_engine(first)
        assert len(slice_.resident_pages) > 0

        second, _ = cluster.spawn_engine("second", local_pages=32,
                                         warm_from=slice_)
        report = second.run(self._trace())
        assert report.misses < 50  # most pages adopted warm

    def test_warm_spawn_much_faster_end_to_end(self):
        cluster = ElasticCluster(dataset_pages=200)
        cold, _ = cluster.spawn_engine("cold", local_pages=32,
                                       slice_pages=256)
        r_cold = cold.run(self._trace())
        slice_ = cluster.detach_engine(cold)
        warm, _ = cluster.spawn_engine("warm", local_pages=32,
                                       warm_from=slice_)
        r_warm = warm.run(self._trace())
        assert r_cold.total_ns > 2 * r_warm.total_ns

    def test_spawn_time_is_attach_overhead(self):
        cluster = ElasticCluster(dataset_pages=50)
        _engine, spawn_ns = cluster.spawn_engine("e", slice_pages=64)
        assert spawn_ns == ElasticCluster.ATTACH_OVERHEAD_NS


class TestMigration:
    def test_pooled_migration_is_constant(self):
        cluster = ElasticCluster(dataset_pages=10)
        small = cluster.migration_time_ns(1 * GIB, pooled=True)
        large = cluster.migration_time_ns(100 * GIB, pooled=True)
        assert small == large  # a remap, independent of state size

    def test_copy_migration_scales_with_state(self):
        cluster = ElasticCluster(dataset_pages=10)
        small = cluster.migration_time_ns(1 * GIB, pooled=False)
        large = cluster.migration_time_ns(10 * GIB, pooled=False)
        assert large > 5 * small

    def test_pooled_orders_of_magnitude_cheaper(self):
        cluster = ElasticCluster(dataset_pages=10)
        pooled = cluster.migration_time_ns(8 * GIB, pooled=True)
        copied = cluster.migration_time_ns(8 * GIB, pooled=False)
        assert copied / pooled > 100


class TestPagePool:
    def test_lease_release_accounting(self):
        pool = PagePool(capacity_pages=100)
        assert pool.lease("a", 30)
        assert pool.lease("b", 50)
        assert pool.free_pages == 20
        assert pool.occupancy == 0.8
        assert pool.holds("a")
        # A departure returns exactly the pages it held.
        assert pool.release("a") == 30
        assert not pool.holds("a")
        assert pool.free_pages == 50
        assert pool.leased_pages + pool.free_pages == pool.capacity_pages

    def test_full_pool_refuses_without_raising(self):
        pool = PagePool(capacity_pages=10)
        assert pool.lease("a", 8)
        assert not pool.lease("b", 4)  # capacity miss, not an error
        assert pool.lease("b", 2)

    def test_double_release_raises(self):
        pool = PagePool(capacity_pages=10)
        pool.lease("a", 4)
        pool.release("a")
        with pytest.raises(PoolingError):
            pool.release("a")

    def test_double_lease_raises(self):
        pool = PagePool(capacity_pages=10)
        pool.lease("a", 2)
        with pytest.raises(PoolingError):
            pool.lease("a", 2)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(PoolingError):
            PagePool(capacity_pages=0)
        pool = PagePool(capacity_pages=10)
        with pytest.raises(PoolingError):
            pool.lease("a", 0)

    def test_resize_cannot_strand_leases(self):
        pool = PagePool(capacity_pages=10)
        pool.lease("a", 8)
        with pytest.raises(PoolingError):
            pool.resize(4)
        pool.resize(20)
        assert pool.free_pages == 12

    def test_occupancy_consistent_under_churn(self):
        # Interleaved arrivals and departures: the ledger never drifts
        # from a recomputed ground truth.
        pool = PagePool(capacity_pages=1_000)
        import random
        rng = random.Random(5)
        live: dict[int, int] = {}
        for tenant in range(300):
            pages = rng.randint(1, 40)
            if pool.lease(tenant, pages):
                live[tenant] = pages
            if live and rng.random() < 0.5:
                victim = rng.choice(sorted(live))
                assert pool.release(victim) == live.pop(victim)
            assert pool.leased_pages == sum(live.values())
            assert pool.free_pages == pool.capacity_pages - sum(live.values())
        assert pool.peak_leased_pages <= pool.capacity_pages
        assert pool.total_leases - pool.total_releases == len(live)
