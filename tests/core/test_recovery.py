"""ARIES-lite crash recovery: correctness under any crash point."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recovery import RecoveryManager
from repro.core.wal import (
    BatteryDRAMLogBackend,
    CXLNVMLogBackend,
    NVMeLogBackend,
    WriteAheadLog,
)
from repro.errors import TransactionError
from repro.storage.disk import StorageDevice


def manager(group_size=1) -> RecoveryManager:
    return RecoveryManager(
        WriteAheadLog(BatteryDRAMLogBackend.build(),
                      group_size=group_size)
    )


class TestTransactions:
    def test_committed_update_visible(self):
        rm = manager()
        rm.begin(1)
        rm.update(1, page_id=0, key="a", value=10)
        rm.commit(1)
        assert rm.read(0, "a") == 10

    def test_abort_rolls_back(self):
        rm = manager()
        rm.begin(1)
        rm.update(1, 0, "a", 10)
        rm.commit(1)
        rm.begin(2)
        rm.update(2, 0, "a", 99)
        rm.update(2, 0, "b", 1)
        rm.abort(2)
        assert rm.read(0, "a") == 10
        assert rm.read(0, "b") is None

    def test_double_begin_rejected(self):
        rm = manager()
        rm.begin(1)
        with pytest.raises(TransactionError):
            rm.begin(1)

    def test_update_without_begin_rejected(self):
        with pytest.raises(TransactionError):
            manager().update(1, 0, "a", 1)

    def test_dirty_write_rejected(self):
        """ARIES undo requires strict 2PL: a second transaction may
        not overwrite uncommitted data."""
        rm = manager()
        rm.begin(1)
        rm.begin(2)
        rm.update(1, 0, "a", 10)
        with pytest.raises(TransactionError):
            rm.update(2, 0, "a", 99)
        rm.commit(1)
        rm.update(2, 0, "a", 99)  # lock released: now fine
        rm.commit(2)
        assert rm.read(0, "a") == 99

    def test_commit_forces_log(self):
        rm = manager(group_size=8)
        rm.begin(1)
        rm.update(1, 0, "a", 1)
        assert rm.wal.pending > 0
        rm.commit(1)
        assert rm.wal.pending == 0


class TestCrashRecovery:
    def test_committed_survives_crash_without_flush(self):
        rm = manager()
        rm.begin(1)
        rm.update(1, 0, "a", 10)
        rm.commit(1)
        rm.crash()               # dirty page never flushed
        report = rm.recover()
        assert rm.read(0, "a") == 10
        assert report.redo_applied >= 1

    def test_uncommitted_rolled_back_after_crash(self):
        rm = manager()
        rm.begin(1)
        rm.update(1, 0, "a", 10)
        rm.commit(1)
        rm.begin(2)
        rm.update(2, 0, "a", 99)  # loser
        rm.crash()
        report = rm.recover()
        assert rm.read(0, "a") == 10
        assert report.losers == {2}
        assert report.undo_applied >= 1

    def test_flushed_dirty_page_of_loser_undone(self):
        """The hard ARIES case: a loser's dirty page reached disk
        before the crash (steal); undo must reverse it."""
        rm = manager()
        rm.begin(1)
        rm.update(1, 0, "a", 10)
        rm.commit(1)
        rm.begin(2)
        rm.update(2, 0, "a", 99)
        rm.flush_page(0)          # steal: loser's write hits disk
        rm.crash()
        rm.recover()
        assert rm.read(0, "a") == 10

    def test_checkpoint_bounds_analysis(self):
        rm = manager()
        for txn in range(1, 6):
            rm.begin(txn)
            rm.update(txn, txn, "k", txn)
            rm.commit(txn)
        rm.checkpoint()
        rm.begin(10)
        rm.update(10, 0, "post", 1)
        rm.commit(10)
        rm.crash()
        report = rm.recover()
        assert rm.read(0, "post") == 1
        for txn in range(1, 6):
            assert rm.read(txn, "k") == txn
        assert report.redo_applied <= 2  # only post-checkpoint work

    def test_recovery_idempotent(self):
        rm = manager()
        rm.begin(1)
        rm.update(1, 0, "a", 10)
        rm.commit(1)
        rm.crash()
        rm.recover()
        state_once = dict(rm.volatile.get(0, {}))
        rm.crash()
        rm.recover()
        assert rm.volatile.get(0, {}) == state_once


class TestLogPlacementTiming:
    def _workload(self, rm):
        for txn in range(1, 30):
            rm.begin(txn)
            rm.update(txn, txn % 4, "k", txn)
            rm.commit(txn)
        rm.crash()
        return rm.recover()

    def test_cxl_nvm_recovers_faster_than_nvme(self):
        nvme = RecoveryManager(
            WriteAheadLog(NVMeLogBackend(StorageDevice())))
        cxl = RecoveryManager(WriteAheadLog(CXLNVMLogBackend.build()))
        t_nvme = self._workload(nvme).time_ns
        t_cxl = self._workload(cxl).time_ns
        assert t_cxl < t_nvme

    def test_commit_latency_ordering(self):
        nvme = RecoveryManager(
            WriteAheadLog(NVMeLogBackend(StorageDevice())))
        cxl = RecoveryManager(WriteAheadLog(CXLNVMLogBackend.build()))
        for rm in (nvme, cxl):
            rm.begin(1)
            rm.update(1, 0, "a", 1)
            rm.commit(1)
        assert cxl.wal.commit_latency.mean < nvme.wal.commit_latency.mean


@given(ops=st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),    # txn slot
        st.integers(min_value=0, max_value=3),    # page
        st.sampled_from(["x", "y"]),              # key
        st.integers(min_value=0, max_value=99),   # value
        st.sampled_from(["update", "commit", "flush", "checkpoint"]),
    ),
    min_size=1, max_size=60,
))
@settings(max_examples=60, deadline=None)
def test_recovery_equals_committed_history(ops):
    """Property: after crash+recover, state equals exactly the replay
    of committed transactions in commit order."""
    rm = manager()
    txn_ids = {}
    next_txn = 1
    pending: dict[int, list] = {}
    committed_effects: list = []
    write_locks: dict[tuple, int] = {}

    for slot, page, key, value, action in ops:
        if action == "flush":
            rm.flush_page(page)
            continue
        if action == "checkpoint":
            rm.checkpoint()
            continue
        if slot not in txn_ids:
            txn_ids[slot] = next_txn
            rm.begin(next_txn)
            pending[slot] = []
            next_txn += 1
        txn = txn_ids[slot]
        if action == "update":
            # Strict 2PL: skip updates that would be dirty writes
            # (the manager rejects them; see the dedicated test).
            holder = write_locks.get((page, key))
            if holder is not None and holder != txn:
                continue
            rm.update(txn, page, key, value)
            write_locks[(page, key)] = txn
            pending[slot].append((page, key, value))
        else:  # commit
            rm.commit(txn)
            committed_effects.extend(pending[slot])
            write_locks = {
                k: h for k, h in write_locks.items() if h != txn
            }
            del txn_ids[slot]
            del pending[slot]

    rm.crash()
    rm.recover()

    expected: dict[tuple, int] = {}
    for page, key, value in committed_effects:
        expected[(page, key)] = value
    for (page, key), value in expected.items():
        assert rm.read(page, key) == value
    # Loser updates to untouched keys are invisible.
    committed_keys = set(expected)
    for slot, updates in pending.items():
        for page, key, _value in updates:
            if (page, key) not in committed_keys:
                assert rm.read(page, key) is None
