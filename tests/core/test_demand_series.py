"""The Pond pooling-fraction curve (DemandSeries)."""

import pytest

from repro.core.elastic import DemandSeries
from repro.errors import PoolingError


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(PoolingError):
            DemandSeries(series=[])
        with pytest.raises(PoolingError):
            DemandSeries(series=[[]])

    def test_ragged_rejected(self):
        with pytest.raises(PoolingError):
            DemandSeries(series=[[1, 2], [1]])

    def test_diurnal_shape(self):
        d = DemandSeries.diurnal(servers=8, steps=24)
        assert len(d.series) == 8
        assert all(len(s) == 24 for s in d.series)
        assert all(v > 0 for s in d.series for v in s)

    def test_diurnal_deterministic(self):
        a = DemandSeries.diurnal(seed=3)
        b = DemandSeries.diurnal(seed=3)
        assert a.series == b.series


class TestPeaks:
    def test_anticorrelated_demands_save_most(self):
        # Two servers perfectly out of phase: aggregate is flat.
        d = DemandSeries(series=[[10, 0, 10, 0], [0, 10, 0, 10]])
        assert d.sum_of_peaks == 20
        assert d.peak_of_sum == 10
        assert d.savings_at(1.0) == pytest.approx(0.5)

    def test_correlated_demands_save_nothing(self):
        d = DemandSeries(series=[[10, 0], [10, 0]])
        assert d.peak_of_sum == d.sum_of_peaks
        assert d.savings_at(1.0) == 0.0

    def test_savings_linear_in_fraction(self):
        d = DemandSeries(series=[[10, 0, 10, 0], [0, 10, 0, 10]])
        assert d.savings_at(0.5) == pytest.approx(0.25)
        assert d.savings_at(0.1) == pytest.approx(0.05)

    def test_invalid_fraction(self):
        d = DemandSeries(series=[[1]])
        with pytest.raises(PoolingError):
            d.savings_at(1.5)


class TestPondShape:
    def test_curve_monotone(self):
        d = DemandSeries.diurnal()
        curve = d.savings_curve()
        savings = [s for _f, s in curve]
        assert savings == sorted(savings)
        assert savings[0] == 0.0

    def test_pond_range_at_half_pool(self):
        """Pond reports mid-single-digit to ~10% DRAM reduction for
        realistic pool fractions; the diurnal fleet lands there."""
        d = DemandSeries.diurnal()
        assert 0.05 < d.savings_at(0.5) < 0.25
