"""Concurrent session scheduler: determinism, fairness, contention."""

import random

import pytest

from repro.core import (
    ClientSession,
    ConcurrentEngine,
    DbCostPolicy,
    RoundRobinPolicy,
    ScaleUpEngine,
    StaticPolicy,
    WeightedPolicy,
)
from repro.errors import ConfigError
from repro.sim.bandwidth import WaitQueue
from repro.sim.context import SimContext
from repro.workloads import (
    Access,
    mixed_htap_blocks,
    mixed_htap_trace,
    scan_trace,
)


def cxl_engine(pages=2_000, fast=True, warm=None, placement=None):
    ctx = SimContext()
    engine = ScaleUpEngine.build(
        dram_pages=1, cxl_pages=pages,
        placement=placement or StaticPolicy(lambda _p: 1),
        with_storage=False, ctx=ctx,
    )
    for page in range(pages - 8 if warm is None else warm):
        engine.pool.access(page)
    engine.pool.set_fast_lane(fast)
    return engine


def htap_engine(fast=True):
    """Small DRAM + CXL under the cost policy: live faults and
    migrations, the hard case for lane identity."""
    ctx = SimContext()
    engine = ScaleUpEngine.build(
        dram_pages=256, cxl_pages=2_000,
        placement=DbCostPolicy(), with_storage=False, ctx=ctx,
    )
    engine.pool.set_fast_lane(fast)
    return engine


def point_trace(seed, ops=400, pages=1_000, think_ns=100.0):
    rng = random.Random(seed)
    return [Access(page_id=rng.randrange(pages), think_ns=think_ns)
            for _ in range(ops)]


def readahead_scan(first_page, num_pages, repeats=1, chunk_pages=16):
    out = []
    for _ in range(repeats):
        for start in range(0, num_pages, chunk_pages):
            out.append(Access(
                page_id=first_page + start, is_scan=True,
                nbytes=chunk_pages * 4096, think_ns=0.0,
            ))
    return out


def pool_digest(engine):
    """Every float the pool accumulated, repr'd (bit-exact)."""
    stats = engine.pool.stats
    return (
        repr(engine.pool.clock.now),
        repr(stats.demand_time_ns),
        repr(stats.fault_time_ns),
        repr(stats.migration_time_ns),
        stats.accesses, stats.misses, stats.migrations,
        tuple(tier.hits for tier in stats.per_tier),
    )


def run_digest(engine, report):
    """EngineReport floats + pool state, repr'd."""
    return (
        report.ops,
        repr(report.total_ns), repr(report.demand_ns),
        repr(report.think_ns),
        report.misses, report.migrations,
    ) + pool_digest(engine)


def sessions_digest(engine, report):
    """SessionRunReport floats + pool state, repr'd. Collapsed to the
    same shape as :func:`run_digest` for the N=1 identity checks."""
    session = next(iter(report.sessions.values()))
    return (
        session.ops,
        repr(session.total_ns), repr(session.demand_ns),
        repr(session.think_ns),
        session.misses, session.migrations,
    ) + pool_digest(engine)


TRACES = {
    "oltp-points": lambda: point_trace(7, ops=600),
    "olap-scan": lambda: scan_trace(0, 1_500, repeats=2),
    "htap-scalar": lambda: mixed_htap_trace(
        oltp_pages=600, olap_pages=800, oltp_ops=3_000, seed=3),
    "htap-blocks": lambda: mixed_htap_blocks(
        oltp_pages=600, olap_pages=800, oltp_ops=3_000, seed=3),
}


class TestSingleSessionIdentity:
    """A one-session run is byte-identical to ScaleUpEngine.run."""

    @pytest.mark.parametrize("fast", [True, False],
                             ids=["fast-lane", "compat-lane"])
    @pytest.mark.parametrize("kind", ["oltp-points", "olap-scan"])
    def test_static_pinning(self, kind, fast):
        baseline = cxl_engine(fast=fast)
        sessions = cxl_engine(fast=fast)
        ref = baseline.run(TRACES[kind]())
        rep = sessions.run_sessions([TRACES[kind]()])
        assert sessions_digest(sessions, rep) == \
            run_digest(baseline, ref)

    @pytest.mark.parametrize("fast", [True, False],
                             ids=["fast-lane", "compat-lane"])
    @pytest.mark.parametrize("kind", ["htap-scalar", "htap-blocks"])
    def test_with_faults_and_migrations(self, kind, fast):
        baseline = htap_engine(fast=fast)
        sessions = htap_engine(fast=fast)
        ref = baseline.run(TRACES[kind]())
        rep = sessions.run_sessions([TRACES[kind]()])
        assert ref.misses > 0  # the trace must exercise the fault path
        assert sessions_digest(sessions, rep) == \
            run_digest(baseline, ref)

    def test_identity_at_any_morsel_quantum(self):
        baseline = cxl_engine()
        ref_digest = run_digest(baseline, baseline.run(TRACES["olap-scan"]()))
        for quantum in (1, 7, 256):
            engine = cxl_engine()
            rep = engine.run_sessions([TRACES["olap-scan"]()],
                                      morsel_ops=quantum)
            assert sessions_digest(engine, rep) == ref_digest


def mixed_session_set():
    return [
        ClientSession("point-a", point_trace(1, ops=300)),
        ClientSession("point-b", point_trace(2, ops=300)),
        ClientSession("scan-a", readahead_scan(1_000, 800, repeats=2)),
        ClientSession("scan-b", readahead_scan(1_000, 800, repeats=2)),
    ]


def report_digest(report):
    parts = [repr(report.makespan_ns), report.policy]
    for name in sorted(report.sessions):
        s = report.sessions[name]
        parts.append((
            name, s.ops, repr(s.demand_ns), repr(s.think_ns),
            repr(s.wait_ns), repr(s.end_ns), s.misses, s.migrations,
            s.quanta, tuple(s.samples),
        ))
    return tuple(parts)


class TestDeterminism:
    def test_session_permutation_invariance(self):
        def run(order):
            engine = cxl_engine(pages=4_000)
            sessions = mixed_session_set()
            return report_digest(
                engine.run_sessions([sessions[i] for i in order]))

        first = run([0, 1, 2, 3])
        assert run([3, 1, 0, 2]) == first
        assert run([2, 3, 1, 0]) == first

    def test_lanes_equivalent_under_contention(self):
        def run(fast):
            engine = cxl_engine(pages=4_000, fast=fast)
            report = engine.run_sessions(mixed_session_set())
            assert report.wait_ns > 0  # contention must be live
            return report_digest(report) + pool_digest(engine)

        assert run(True) == run(False)

    def test_repeat_runs_identical(self):
        def run():
            engine = cxl_engine(pages=4_000)
            return report_digest(engine.run_sessions(mixed_session_set()))

        assert run() == run()


class TestWaitQueue:
    def test_equal_timestamp_fifo(self):
        """Two arrivals at the same instant serialize in grant order:
        the second waits exactly one service time behind the first."""
        queue = WaitQueue("link", read_bandwidth=64 * 2 ** 30)
        nbytes = 1 << 20
        service = queue.read_table.time_ns(nbytes)

        assert queue.delay_ns(0.0) == 0.0
        queue.occupy_run(0.0, nbytes)
        first_free = queue.free_at_ns
        assert first_free == service

        # Same-timestamp second arrival queues behind the first.
        wait = queue.delay_ns(0.0)
        assert wait == service
        queue.occupy_run(0.0 + wait, nbytes)
        assert queue.free_at_ns == 2 * service
        assert queue.snapshot()["grants"] == 2

    def test_late_arrival_no_residual_wait(self):
        queue = WaitQueue("link", read_bandwidth=64 * 2 ** 30)
        queue.occupy_run(0.0, 1 << 20)
        assert queue.delay_ns(queue.free_at_ns + 1.0) == 0.0

    def test_run_occupancy_accounts_all_members(self):
        queue = WaitQueue("dev", read_bandwidth=64 * 2 ** 30)
        queue.occupy_run(0.0, 4096, count=8)
        snap = queue.snapshot()
        assert snap["grants"] == 8
        assert snap["bytes"] == 8 * 4096
        # free_at reflects the *last* member only; the run's earlier
        # members completed inside the caller's accumulated latency.
        assert queue.free_at_ns == queue.read_table.time_ns(4096)


class TestContention:
    def test_p95_monotonic_in_session_count(self):
        """Bandwidth-bound scan mix: point-lookup tail latency grows
        monotonically with the number of contending scan sessions."""
        def p95_with_scans(num_scans):
            engine = cxl_engine(pages=8_000, warm=7_000)
            points = [ClientSession(f"pt-{i}", point_trace(i, pages=1_000))
                      for i in range(2)]
            scans = [ClientSession(
                f"scan-{i}",
                readahead_scan(1_000 + i * 1_500, 1_500, repeats=3))
                for i in range(num_scans)]
            report = engine.run_sessions(points + scans)
            return report.p95_for(["pt-0", "pt-1"])

        curve = [p95_with_scans(n) for n in (0, 1, 2, 4)]
        assert curve == sorted(curve)
        assert curve[-1] > 1.3 * curve[0]

    def test_wait_attributed_to_sessions(self):
        engine = cxl_engine(pages=4_000)
        report = engine.run_sessions(mixed_session_set())
        assert report.wait_ns > 0
        assert report.wait_ns == pytest.approx(
            sum(s.wait_ns for s in report.sessions.values()))
        assert report.makespan_ns > 0
        assert report.throughput_ops_per_s > 0


class TestFairnessPolicies:
    def test_round_robin_deterministic(self):
        def run():
            engine = cxl_engine(pages=4_000)
            return report_digest(engine.run_sessions(
                mixed_session_set(), policy=RoundRobinPolicy()))

        first = run()
        assert first == run()
        assert first[1] == "round_robin"

    def test_weighted_share_follows_weight(self):
        """Under stride scheduling a weight-4 session finishes the
        same work sooner than its weight-1 twin."""
        engine = cxl_engine(pages=4_000)
        trace = lambda: readahead_scan(0, 1_500, repeats=4)
        report = engine.run_sessions(
            [ClientSession("heavy", trace(), weight=4.0),
             ClientSession("light", trace(), weight=1.0)],
            policy=WeightedPolicy(), morsel_ops=8)
        heavy = report.session("heavy")
        light = report.session("light")
        assert heavy.ops == light.ops
        assert heavy.end_ns < light.end_ns

    def test_weighted_permutation_invariant(self):
        def run(flip):
            engine = cxl_engine(pages=4_000)
            pair = [ClientSession("a", point_trace(1), weight=3.0),
                    ClientSession("b", point_trace(2), weight=1.0)]
            if flip:
                pair.reverse()
            return report_digest(engine.run_sessions(
                pair, policy=WeightedPolicy()))

        assert run(False) == run(True)


class TestSessionApi:
    def test_raw_traces_get_positional_names(self):
        engine = cxl_engine()
        report = engine.run_sessions(
            [point_trace(0, ops=50), point_trace(1, ops=50)])
        assert sorted(report.sessions) == ["s00", "s01"]
        assert report.num_sessions == 2
        assert report.ops == 100

    def test_empty_session_set_rejected(self):
        engine = cxl_engine()
        with pytest.raises(ConfigError):
            engine.run_sessions([])

    def test_duplicate_names_rejected(self):
        engine = cxl_engine()
        with pytest.raises(ConfigError):
            engine.run_sessions([
                ClientSession("dup", point_trace(0, ops=10)),
                ClientSession("dup", point_trace(1, ops=10)),
            ])

    def test_bad_session_params_rejected(self):
        with pytest.raises(ConfigError):
            ClientSession("", point_trace(0, ops=10))
        with pytest.raises(ConfigError):
            ClientSession("s", point_trace(0, ops=10), weight=0.0)
        engine = cxl_engine()
        with pytest.raises(ConfigError):
            ConcurrentEngine(engine.pool, morsel_ops=0)

    def test_foreign_context_rejected(self):
        engine = cxl_engine()
        with pytest.raises(ConfigError):
            ConcurrentEngine(engine.pool, ctx=SimContext())

    def test_unknown_session_name_rejected(self):
        engine = cxl_engine()
        report = engine.run_sessions([point_trace(0, ops=20)])
        with pytest.raises(ConfigError):
            report.session("nope")

    def test_morsel_hook_fires_per_quantum(self):
        calls = []
        engine = cxl_engine()
        executor = ConcurrentEngine(
            engine.pool, morsel_ops=16,
            on_morsel=lambda name, morsel: calls.append((name, morsel)))
        report = executor.run([ClientSession("q", point_trace(0, ops=64))])
        assert len(calls) == report.session("q").quanta
        assert all(name == "q" for name, _ in calls)
        assert all(m.service_ns > 0 for _, m in calls)

    def test_session_run_metrics_emitted(self):
        engine = cxl_engine()
        engine.run_sessions([point_trace(0, ops=20)])
        metrics = engine.pool.ctx.metrics
        assert metrics.get("engine.session_runs") == 1
        assert metrics.get("engine.sessions") == 1

    def test_compat_lane_counts_runs(self):
        engine = cxl_engine()
        engine.run_concurrent([point_trace(0, ops=50)])
        assert engine.pool.ctx.metrics.get(
            "engine.concurrent_compat_runs") == 1
