"""Fault-storm equivalence tests for the vectorised miss path.

The contract under test: the fault lane (``_fault_span``) resolves
whole miss runs — bulk backing reads, ``choose_admit_tiers`` placement,
``victim_batch`` eviction/demotion cascades, array installs — and the
resulting pool state is **bit-identical** to the scalar
``access → _fault → _install`` chain, across object, block, and quantum
delivery, under tiny tier capacities that force cascades on nearly
every run.

Also here: the ``victim_batch``/``victim`` order-equivalence property
for LRU and Clock under random pin sets, the
``_resident_counts``/``tier_residents`` agreement assertion backing the
``_make_room`` satellite fix, and the ``preload``/``warm_with``
byte-identity contract.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.engine import ScaleUpEngine
from repro.core.placement import OSPagingPolicy, StaticPolicy
from repro.core.replacement import ClockPolicy, LRUPolicy
from repro.units import CACHE_LINE, PAGE_SIZE
from repro.workloads.scans import scan_blocks, scan_trace
from repro.workloads.traces import AccessBlock
from repro.workloads.ycsb import YCSBConfig, ycsb_blocks

from tests.core.test_access_batch import _pool_state, _scalar_drive


def _cold_engine(dram_pages, cxl_pages, placement=None, fast=True):
    engine = ScaleUpEngine.build(
        dram_pages=dram_pages,
        cxl_pages=cxl_pages,
        placement=placement,
        name="storm",
    )
    engine.pool.set_fast_lane(fast)
    return engine


def _assert_counts_agree(pool):
    """The `_make_room` satellite contract: the maintained counter
    array always agrees with the frame-table ground truth."""
    for t in range(len(pool.tiers)):
        assert pool._resident_counts[t] == pool.tier_residents(t)


def _random_runs(rng, pages, n_runs):
    """Cold-heavy randomized runs: long fresh ranges (pure fault
    storms), revisits (hits and demoted-page re-faults), and short
    scattered tails (scalar-fallback coverage below _FAULT_MIN)."""
    runs = []
    cursor = 0
    for _ in range(n_runs):
        kind = rng.random()
        if kind < 0.5:
            length = rng.randint(40, 400)
            ids = list(range(cursor, cursor + length))
            cursor += length
        elif kind < 0.8:
            start = rng.randrange(max(1, cursor))
            length = rng.randint(20, 200)
            ids = list(range(start, start + length))
            cursor = max(cursor, start + length)
        else:
            ids = [rng.randrange(max(1, cursor + 50))
                   for _ in range(rng.randint(1, 12))]
        kwargs = {
            "nbytes": rng.choice([CACHE_LINE, PAGE_SIZE]),
            "write": rng.random() < 0.3,
            "is_scan": rng.random() < 0.5,
            "think_ns": rng.choice([0.0, 120.0]),
        }
        runs.append((ids, kwargs))
        if cursor >= pages:
            break
    return runs


@pytest.mark.parametrize("seed", [1, 7, 23, 91])
@pytest.mark.parametrize("dram,cxl", [(8, 16), (16, 48)])
def test_object_delivery_storm_equivalence(seed, dram, cxl):
    """access_batch vs the scalar loop on cold randomized runs with
    tiny tiers: every fault cascades, state must match bit for bit."""
    rng = random.Random(seed)
    runs = _random_runs(rng, pages=4_000, n_runs=12)
    scalar = _cold_engine(dram, cxl, fast=False).pool
    fast = _cold_engine(dram, cxl, fast=True).pool
    total_s = 0.0
    total_f = 0.0
    for ids, kwargs in runs:
        total_s = _scalar_drive(scalar, ids, accum=total_s, **kwargs)
        total_f = fast.access_batch(ids, accum=total_f, **kwargs)
    fast.sync_frame_stats()
    assert repr(total_s) == repr(total_f)
    assert _pool_state(scalar) == _pool_state(fast)
    _assert_counts_agree(scalar)
    _assert_counts_agree(fast)


@pytest.mark.parametrize("seed", [3, 17])
def test_block_delivery_storm_equivalence(seed):
    """access_block (fast) vs scalar access loop (compat reference) on
    a cold over-capacity block trace with eviction cascades."""
    rng = random.Random(seed)
    pages = 3_000
    trace = list(scan_blocks(0, pages, repeats=2))
    trace += list(ycsb_blocks(YCSBConfig(
        mix="A", num_pages=pages, num_ops=1_500, seed=seed)))
    rng.shuffle(trace)
    compat = _cold_engine(16, 64, placement=OSPagingPolicy(), fast=False)
    fast = _cold_engine(16, 64, placement=OSPagingPolicy(), fast=True)
    r_c = compat.run(trace, label="storm")
    r_f = fast.run(trace, label="storm")
    fast.pool.sync_frame_stats()
    compat.pool.sync_frame_stats()
    assert repr(r_c.total_ns) == repr(r_f.total_ns)
    assert repr(r_c.demand_ns) == repr(r_f.demand_ns)
    assert r_c.misses == r_f.misses
    assert _pool_state(compat.pool) == _pool_state(fast.pool)
    _assert_counts_agree(fast.pool)


def test_quantum_delivery_storm_equivalence():
    """access_quantum on a cold pool: the fault lane engages inside
    quantum segments and matches the compat lane bit for bit."""
    pages = 2_000
    ids = np.arange(pages, dtype=np.int64)
    segs = [
        (0, 600, PAGE_SIZE, False, True, 0.0),
        (600, 1_200, CACHE_LINE, True, False, 90.0),
        (1_200, pages, PAGE_SIZE, False, True, 0.0),
    ]
    pool_c = _cold_engine(8, 32, placement=StaticPolicy(lambda _p: 1),
                          fast=False).pool
    acc_c = 0.0
    dem_c = []
    for a, b, nbytes, write, is_scan, think_ns in segs:
        acc_c = pool_c.access_run(ids[a:b], nbytes=nbytes, write=write,
                                  is_scan=is_scan, think_ns=think_ns,
                                  accum=acc_c)
        dem_c.append(repr(acc_c))
    pool_f = _cold_engine(8, 32, placement=StaticPolicy(lambda _p: 1),
                          fast=True).pool
    assert pool_f.quantum_lane_ready()
    acc_f, demands = pool_f.access_quantum(ids, segs, 0.0)
    dem_f = [repr(d) for d in demands]
    pool_c.sync_frame_stats()
    pool_f.sync_frame_stats()
    assert repr(acc_c) == repr(acc_f)
    assert dem_c == dem_f
    assert _pool_state(pool_c) == _pool_state(pool_f)
    _assert_counts_agree(pool_f)


@pytest.mark.parametrize("policy_cls", [LRUPolicy, ClockPolicy])
@pytest.mark.parametrize("seed", list(range(8)))
def test_victim_batch_order_property(policy_cls, seed):
    """victim_batch(k, pinned) == k repeated victim(pinned)+remove()
    for random insert/touch histories and random pin sets."""
    rng = random.Random(seed)
    keys = list(range(rng.randint(5, 60)))
    a, b = policy_cls(), policy_cls()
    for key in keys:
        a.record_insert(key)
        b.record_insert(key)
    for _ in range(rng.randint(0, 80)):
        key = rng.choice(keys)
        a.record_access(key)
        b.record_access(key)
    pin_set = {k for k in keys if rng.random() < 0.3}
    pinned = pin_set.__contains__
    k = rng.randint(0, len(keys) + 2)
    batch = a.victim_batch(k, pinned)
    loop = []
    for _ in range(k):
        victim = b.victim(pinned)
        if victim is None:
            break
        b.remove(victim)
        loop.append(victim)
    assert batch == loop
    assert not (set(batch) & pin_set)


def test_lru_peek_batch_is_nondestructive():
    policy = LRUPolicy()
    for key in range(10):
        policy.record_insert(key)
    policy.record_access(2)
    peeked = policy.peek_batch(4)
    assert peeked == [0, 1, 3, 4]
    assert policy.victim_batch(4) == peeked


def test_preload_matches_analytic_warm_up():
    """engine.preload must leave pool state (residency, stats, device
    counters, clock) byte-identical to warm_with on the same trace."""
    pages = 1_500
    analytic = _cold_engine(32, 128, placement=OSPagingPolicy(),
                            fast=False)
    bulk = _cold_engine(32, 128, placement=OSPagingPolicy(), fast=True)
    analytic.warm_with(scan_trace(0, pages, repeats=1, think_ns=0.0))
    bulk.preload(np.arange(pages, dtype=np.int64), nbytes=PAGE_SIZE,
                 is_scan=True)
    bulk.pool.sync_frame_stats()
    assert _pool_state(analytic.pool) == _pool_state(bulk.pool)
    _assert_counts_agree(bulk.pool)


def test_preload_default_nbytes_matches_page_scan():
    """pool.preload defaults to a full-page scan read per id."""
    a = _cold_engine(16, 32, fast=True)
    b = _cold_engine(16, 32, fast=True)
    ids = np.arange(600, dtype=np.int64)
    a.pool.preload(ids, nbytes=PAGE_SIZE, is_scan=True)
    b.pool.access_run(ids, nbytes=PAGE_SIZE, is_scan=True)
    a.pool.sync_frame_stats()
    b.pool.sync_frame_stats()
    assert _pool_state(a.pool) == _pool_state(b.pool)


def test_long_single_span_preload_no_overflow():
    """Regression: one 32k-id fault span drives chain_values through
    tens of thousands of steps at a small ulp — the int64 cumsum used
    to wrap negative and corrupt the binade search, leaving a negative
    clock. The bulk preload must match the scalar warm-up exactly."""
    total = 32_000
    a = _cold_engine(1, total + 16, placement=StaticPolicy(lambda _p: 1),
                     fast=False)
    b = _cold_engine(1, total + 16, placement=StaticPolicy(lambda _p: 1),
                     fast=True)
    a.warm_with(scan_trace(0, total, repeats=1, think_ns=0.0))
    b.preload(np.arange(total, dtype=np.int64), nbytes=PAGE_SIZE,
              is_scan=True)
    a.pool.sync_frame_stats()
    b.pool.sync_frame_stats()
    assert b.pool.clock.now > 0
    assert _pool_state(a.pool) == _pool_state(b.pool)


def test_storm_block_object_agree():
    """The same cold storm delivered as one AccessBlock equals the
    object-at-a-time scalar drive (cross-delivery identity)."""
    pages = 900
    ids = np.arange(pages, dtype=np.int64)
    block = AccessBlock(
        page_id=ids,
        write=np.zeros(pages, dtype=bool),
        is_scan=np.ones(pages, dtype=bool),
        nbytes=np.full(pages, PAGE_SIZE, dtype=np.int64),
        think_ns=np.zeros(pages, dtype=np.float64),
    )
    scalar = _cold_engine(8, 24, fast=False).pool
    blocked = _cold_engine(8, 24, fast=True).pool
    total_s = _scalar_drive(scalar, ids.tolist(), nbytes=PAGE_SIZE,
                            is_scan=True)
    total_b = blocked.access_block(block)
    blocked.sync_frame_stats()
    assert repr(total_s) == repr(total_b)
    assert _pool_state(scalar) == _pool_state(blocked)
