"""Engine-level bit-identity for block-delivered traces.

``ScaleUpEngine.run`` promises that delivering a workload as
``AccessBlock`` chunks simulates the *identical* physics as the
scalar ``Access`` stream — same clock, same demand latency, same
tier statistics, down to the last float ulp — in both the batched
fast lane and the frozen compat lane.
"""

import pytest

from repro.core.engine import ScaleUpEngine
from repro.perf.bench import _digest_report
from repro.workloads.scans import mixed_htap_blocks, mixed_htap_trace
from repro.workloads.traces import accesses_to_blocks
from repro.workloads.ycsb import YCSBConfig, ycsb_blocks, ycsb_trace

HTAP = dict(oltp_pages=200, olap_pages=500, oltp_ops=1500,
            olap_repeats=2, oltp_per_olap=1, seed=11)
YCSB = YCSBConfig(mix="A", num_pages=600, num_ops=3000, seed=9)


def fingerprint(trace, fast):
    """Run *trace* on a fresh engine; digest every simulated quantity.

    Uses the perfbench digest so the identity asserted here is the
    same ulp-exact contract the committed baseline gates.
    """
    engine = ScaleUpEngine.build(dram_pages=256, cxl_pages=900,
                                 name="blocks-test")
    engine.pool.set_fast_lane(fast)
    report = engine.run(trace)
    return _digest_report(engine, report)


@pytest.mark.parametrize("fast", [False, True], ids=["compat", "fast"])
class TestBlockDeliveryIdentity:
    def test_htap_blocks_match_scalar(self, fast):
        scalar = fingerprint(mixed_htap_trace(**HTAP), fast)
        blocks = fingerprint(mixed_htap_blocks(**HTAP), fast)
        assert blocks == scalar

    def test_ycsb_blocks_match_scalar(self, fast):
        scalar = fingerprint(ycsb_trace(YCSB), fast)
        blocks = fingerprint(ycsb_blocks(YCSB), fast)
        assert blocks == scalar

    def test_mixed_delivery_matches(self, fast):
        # A trace that switches between scalar and block items
        # mid-stream must flush pending coalesced runs correctly.
        scalar = list(ycsb_trace(YCSB))
        mixed = (scalar[:500]
                 + list(accesses_to_blocks(iter(scalar[500:2500]),
                                           block_ops=337))
                 + scalar[2500:])
        assert fingerprint(mixed, fast) == fingerprint(scalar, fast)

    def test_tiny_blocks_match(self, fast):
        # block_ops=1 exercises the flush-per-item edge: every block
        # is a single access and coalescing happens across blocks.
        scalar = list(mixed_htap_trace(**HTAP))
        tiny = list(accesses_to_blocks(iter(scalar), block_ops=1))
        assert fingerprint(tiny, fast) == fingerprint(scalar, fast)


def test_lanes_agree_on_blocks():
    blocks = list(mixed_htap_blocks(**HTAP))
    assert fingerprint(blocks, True) == fingerprint(blocks, False)
