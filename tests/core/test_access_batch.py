"""Equivalence tests for the buffer pool's batched fast lane.

The contract under test: ``access_batch`` (and the engine's run-length
coalescer on top of it) produces **bit-identical** simulated state to
the scalar ``access`` loop — same clock floats, same demand times, same
frame metadata, same tracker heat, same replacement order — across
eviction, migration, and placement-trigger boundaries. Not "close":
``==`` on every float.
"""

from __future__ import annotations

import pytest

from repro.core.engine import ScaleUpEngine
from repro.core.placement import DbCostPolicy, OSPagingPolicy, StaticPolicy
from repro.core.replacement import LRUPolicy, make_policy
from repro.core.temperature import ExactTracker, SampledTracker
from repro.sim.interconnect import PREFETCH_DEPTH
from repro.units import CACHE_LINE, PAGE_SIZE
from repro.workloads.scans import mixed_htap_trace, scan_trace
from repro.workloads.ycsb import YCSBConfig, ycsb_trace


def _build(placement=None, dram_pages=32, cxl_pages=64):
    return ScaleUpEngine.build(
        dram_pages=dram_pages,
        cxl_pages=cxl_pages,
        placement=placement,
        name="equiv",
    )


def _tracker_state(tracker):
    if isinstance(tracker, (ExactTracker, SampledTracker)):
        return dict(tracker._heat), tracker._since_epoch
    return None


def _policy_state(policy):
    if isinstance(policy, LRUPolicy):
        return list(policy._order)
    return repr(policy)


def _pool_state(pool):
    """Every piece of simulated state a run can produce."""
    stats = pool.stats
    state = {
        "clock": pool.clock.now,
        "accesses": stats.accesses,
        "misses": stats.misses,
        "writebacks": stats.writebacks,
        "migrations": stats.migrations,
        "demand_time_ns": stats.demand_time_ns,
        "fault_time_ns": stats.fault_time_ns,
        "migration_time_ns": stats.migration_time_ns,
        "per_tier": [t.snapshot() for t in stats.per_tier],
        "frames": {
            pid: (f.tier_index, f.accesses, f.last_access_ns,
                  f.dirty, f.pin_count)
            for pid, f in pool._frames.items()
        },
        "resident": list(pool._resident_counts),
        "tracker": _tracker_state(pool.tracker),
        "policies": [_policy_state(t.policy) for t in pool.tiers],
        "devices": [
            (t.path.device.stats.loads, t.path.device.stats.load_bytes,
             t.path.device.stats.stores, t.path.device.stats.store_bytes)
            for t in pool.tiers
        ],
    }
    placement = pool.placement
    if isinstance(placement, (DbCostPolicy, OSPagingPolicy)):
        state["placement_accesses"] = placement._accesses
    if isinstance(placement, OSPagingPolicy):
        state["sampler"] = _tracker_state(placement.tracker)
    return state


def _scalar_drive(pool, page_ids, nbytes=CACHE_LINE, write=False,
                  is_scan=False, think_ns=0.0, post_ns=0.0,
                  accum=0.0):
    """The reference loop from the access_batch docstring."""
    clock = pool.clock
    for pid in page_ids:
        if think_ns:
            clock.advance(think_ns)
        accum += pool.access(pid, nbytes=nbytes, write=write,
                             is_scan=is_scan)
        if post_ns:
            clock.advance(post_ns)
    return accum


def _compare_drives(make_placement, runs, dram_pages=32, cxl_pages=64):
    """Drive two identical pools — one scalar, one batched — through
    the same access runs and require bit-identical end state."""
    scalar = _build(make_placement(), dram_pages, cxl_pages).pool
    batched = _build(make_placement(), dram_pages, cxl_pages).pool
    total_scalar = 0.0
    total_batched = 0.0
    for page_ids, kwargs in runs:
        total_scalar = _scalar_drive(scalar, page_ids,
                                     accum=total_scalar, **kwargs)
        total_batched = batched.access_batch(page_ids,
                                             accum=total_batched, **kwargs)
    assert total_scalar == total_batched
    assert _pool_state(scalar) == _pool_state(batched)


def test_hit_path_equivalence():
    """Warm pool, every access a hit: the pure fast-path case."""
    pages = list(range(40))
    _compare_drives(
        DbCostPolicy,
        [
            (pages, {"nbytes": PAGE_SIZE, "is_scan": True}),
            (pages * 5, {}),
            (pages, {"write": True}),
        ],
    )


def test_eviction_boundary_equivalence():
    """More pages than capacity: faults and evictions inside runs."""
    cfg = YCSBConfig(mix="B", num_pages=200, num_ops=1500, seed=3)
    reads = [a.page_id for a in ycsb_trace(cfg) if not a.write]
    writes = [a.page_id for a in ycsb_trace(cfg) if a.write]
    _compare_drives(
        DbCostPolicy,
        [
            (reads, {}),
            (writes, {"write": True}),
            (list(range(200)), {"nbytes": PAGE_SIZE, "is_scan": True}),
        ],
        dram_pages=16,
        cxl_pages=48,
    )


def test_placement_trigger_equivalence():
    """Runs longer than the rebalance interval: the trigger access
    must fall out of the window and take the scalar path."""
    def make():
        return DbCostPolicy(rebalance_interval=64)
    pages = [pid % 50 for pid in range(3 * 64 + 7)]
    _compare_drives(make, [(pages, {})], dram_pages=8, cxl_pages=16)


def test_os_paging_sampler_equivalence():
    """OSPagingPolicy: the sampled tracker consumes one RNG draw per
    access in scalar order, so sampled heat must match exactly."""
    def make():
        return OSPagingPolicy(check_interval=50, sample_rate=0.3)
    cfg = YCSBConfig(mix="C", num_pages=120, num_ops=900, seed=9)
    pages = [a.page_id for a in ycsb_trace(cfg)]
    _compare_drives(make, [(pages, {})], dram_pages=16, cxl_pages=32)


def test_static_placement_unbounded_headroom():
    """StaticPolicy advertises effectively infinite headroom; whole
    runs go through one window."""
    def make():
        return StaticPolicy(classifier=lambda pid: pid % 2)
    pages = [pid % 24 for pid in range(500)]
    _compare_drives(make, [(pages, {})], dram_pages=32, cxl_pages=32)


def test_think_and_post_time_equivalence():
    """Per-access think/post CPU charges land at the scalar clock
    positions (frame.last_access_ns depends on them)."""
    pages = [pid % 30 for pid in range(300)]
    _compare_drives(
        DbCostPolicy,
        [(pages, {"think_ns": 50.0, "post_ns": 12.5,
                  "nbytes": PAGE_SIZE, "is_scan": True})],
    )


def test_short_run_fallback():
    """Runs below MIN_BATCH_RUN fall back to plain scalar calls."""
    _compare_drives(DbCostPolicy, [([1, 2], {}), ([3], {"write": True})])


def test_epoch_aging_inside_window():
    """Tracker aging epochs fire at the same access index either way."""
    scalar = _build(StaticPolicy(classifier=lambda _pid: 0)).pool
    batched = _build(StaticPolicy(classifier=lambda _pid: 0)).pool
    scalar.tracker = ExactTracker(epoch_accesses=37)
    batched.tracker = ExactTracker(epoch_accesses=37)
    batched._tracker_batch = batched.tracker.record_batch
    pages = [pid % 20 for pid in range(400)]
    _scalar_drive(scalar, pages)
    batched.access_batch(pages)
    assert _tracker_state(scalar.tracker) == _tracker_state(batched.tracker)
    assert scalar.clock.now == batched.clock.now


def test_engine_run_coalescer_equivalence():
    """engine.run's coalesced fast lane reports bit-identical numbers
    to the scalar compat lane on a mixed-shape trace."""
    trace = list(mixed_htap_trace(
        oltp_pages=60, olap_pages=120, oltp_ops=400,
        olap_repeats=2, oltp_per_olap=3, seed=5,
    ))
    fast = _build(DbCostPolicy(), dram_pages=48, cxl_pages=160)
    slow = _build(DbCostPolicy(), dram_pages=48, cxl_pages=160)
    fast.pool.set_fast_lane(True)
    slow.pool.set_fast_lane(False)
    fr = fast.run(trace, label="fast")
    sr = slow.run(trace, label="slow")
    assert fr.total_ns == sr.total_ns
    assert fr.demand_ns == sr.demand_ns
    assert fr.think_ns == sr.think_ns
    assert (fr.ops, fr.misses, fr.migrations) == \
        (sr.ops, sr.misses, sr.migrations)
    assert _pool_state(fast.pool) == _pool_state(slow.pool)


def test_scan_trace_equivalence_through_engine():
    """Long uniform scan: the best case for coalescing, still exact."""
    trace = list(scan_trace(0, 100, repeats=4))
    fast = _build(DbCostPolicy(), dram_pages=32, cxl_pages=160)
    slow = _build(DbCostPolicy(), dram_pages=32, cxl_pages=160)
    slow.pool.set_fast_lane(False)
    fr = fast.run(trace)
    sr = slow.run(trace)
    assert fr.total_ns == sr.total_ns
    assert fr.demand_ns == sr.demand_ns
    assert _pool_state(fast.pool) == _pool_state(slow.pool)


def test_timing_table_matches_uncached_arithmetic():
    """PathTiming caches the exact floats per-call arithmetic yields."""
    pool = _build(DbCostPolicy()).pool
    for tier in pool.tiers:
        path = tier.path
        timing = path.timing()
        assert timing.read_latency_ns == path.read_latency_ns()
        assert timing.write_latency_ns == path.write_latency_ns()
        assert timing.seq_read_latency_ns == \
            path.read_latency_ns() / PREFETCH_DEPTH
        for size in (1, CACHE_LINE, 1000, PAGE_SIZE, 3 * PAGE_SIZE):
            assert path.read_time(size) == path.read_time_uncached(size)
            assert path.write_time(size) == path.write_time_uncached(size)
            assert path.read_time_sequential(size) == \
                path.read_time_sequential_uncached(size)
            assert path.write_time_sequential(size) == \
                path.write_time_sequential_uncached(size)


def test_replacement_batch_matches_scalar():
    """record_access_batch leaves identical recency state."""
    for name in ("lru", "clock", "2q", "lruk"):
        one, two = make_policy(name), make_policy(name)
        for key in range(10):
            one.record_insert(key)
            two.record_insert(key)
        keys = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9]
        for key in keys:
            one.record_access(key)
        two.record_access_batch(keys, 0, len(keys))
        victims_one, victims_two = [], []
        for _ in range(10):
            v1, v2 = one.victim(), two.victim()
            victims_one.append(v1)
            victims_two.append(v2)
            one.remove(v1)
            two.remove(v2)
        assert victims_one == victims_two


def test_lru_victim_fast_path_matches_scan():
    """The O(1) no-pins victim equals the predicate-scan victim."""
    policy = LRUPolicy()
    for key in range(8):
        policy.record_insert(key)
    policy.record_access(0)
    assert policy.victim() == policy.victim(lambda _k: False) == 1


def test_pinned_pages_still_respected():
    """Pinning forces the predicate path and survives batched runs."""
    pool = _build(DbCostPolicy(), dram_pages=4, cxl_pages=4).pool
    for pid in range(4):
        pool.access(pid)
    # Pin at most two tier-0 residents so evictions still have victims.
    resident = [pid for pid in range(4) if pool.tier_of(pid) == 0][:2]
    for pid in resident:
        pool.pin(pid)
    assert pool._pinned_frames == len(resident)
    pool.access_batch(list(range(4, 10)))
    for pid in resident:
        assert pool.frame_of(pid) is not None
        assert pool.tier_of(pid) == 0
        pool.unpin(pid)
    assert pool._pinned_frames == 0
    pool.drop_all()
    assert pool.resident_pages == 0
    assert pool._pinned_frames == 0


def test_access_batch_rejects_negative_cpu():
    pool = _build(DbCostPolicy()).pool
    with pytest.raises(Exception):
        pool.access_batch([1, 2, 3], think_ns=-1.0)
