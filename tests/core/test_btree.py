"""Tier-spanning B+tree (Sec 3.1 research question)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import config
from repro.core.btree import TieredBTree
from repro.core.buffer import Tier, TieredBufferPool
from repro.core.placement import StaticPolicy
from repro.errors import QueryError
from repro.sim.interconnect import AccessPath, Link
from repro.sim.memory import MemoryDevice


def make_pool(classifier=lambda _p: 0, dram=4_096, cxl=4_096):
    tiers = [
        Tier("dram", AccessPath(device=MemoryDevice(config.local_ddr5())),
             dram),
        Tier("cxl", AccessPath(
            device=MemoryDevice(config.cxl_expander_ddr5()),
            links=(Link(config.cxl_port()),)), cxl),
    ]
    return TieredBufferPool(tiers=tiers,
                            placement=StaticPolicy(classifier))


def build(n=1_000, pool=None, **kwargs):
    pool = pool or make_pool()
    items = [(i, i * 10) for i in range(n)]
    return TieredBTree.bulk_build(pool, items, first_page_id=0,
                                  **kwargs), pool


class TestConstruction:
    def test_shape(self):
        tree, _ = build(1_000, fanout=8, leaf_capacity=16)
        assert tree.size == 1_000
        assert len(tree.leaf_page_ids) == 63  # ceil(1000/16)
        assert tree.height >= 3

    def test_single_leaf(self):
        tree, _ = build(5)
        assert tree.height == 1
        assert tree.inner_page_ids == []

    def test_unsorted_rejected(self):
        pool = make_pool()
        with pytest.raises(QueryError):
            TieredBTree.bulk_build(pool, [(2, 0), (1, 0)],
                                   first_page_id=0)

    def test_duplicate_keys_rejected(self):
        pool = make_pool()
        with pytest.raises(QueryError):
            TieredBTree.bulk_build(pool, [(1, 0), (1, 1)],
                                   first_page_id=0)

    def test_invalid_parameters(self):
        pool = make_pool()
        with pytest.raises(QueryError):
            TieredBTree(pool, 0, fanout=1)
        with pytest.raises(QueryError):
            TieredBTree(pool, 0, leaf_capacity=0)

    def test_empty_tree_has_no_root(self):
        tree = TieredBTree(make_pool(), 0)
        with pytest.raises(QueryError):
            tree.root_page_id


class TestLookup:
    def test_every_key_found(self):
        tree, _ = build(2_000, fanout=8, leaf_capacity=16)
        for key in range(0, 2_000, 7):
            assert tree.lookup(key) == key * 10

    def test_boundary_keys(self):
        tree, _ = build(1_000, fanout=4, leaf_capacity=8)
        assert tree.lookup(0) == 0
        assert tree.lookup(999) == 9_990

    def test_missing_keys_return_none(self):
        pool = make_pool()
        items = [(i * 2, i) for i in range(500)]
        tree = TieredBTree.bulk_build(pool, items, first_page_id=0)
        assert tree.lookup(1) is None
        assert tree.lookup(-5) is None
        assert tree.lookup(10_000) is None

    def test_lookup_charges_one_access_per_level(self):
        tree, pool = build(2_000, fanout=8, leaf_capacity=16)
        before = pool.stats.accesses
        tree.lookup(1_234)
        assert pool.stats.accesses - before == tree.height


class TestRangeScan:
    def test_range_contents(self):
        tree, _ = build(1_000, fanout=8, leaf_capacity=16)
        out = tree.range_scan(100, 150)
        assert [k for k, _v in out] == list(range(100, 151))
        assert all(v == k * 10 for k, v in out)

    def test_range_spanning_leaves(self):
        tree, _ = build(1_000, fanout=4, leaf_capacity=8)
        out = tree.range_scan(0, 999)
        assert len(out) == 1_000

    def test_empty_range(self):
        tree, _ = build(100)
        assert tree.range_scan(50, 40) == []
        assert tree.range_scan(2_000, 3_000) == []


class TestTierPlacement:
    def _lookup_cost(self, classifier_factory, probes=200):
        shape_pool = make_pool()
        items = [(i, i) for i in range(50_000)]
        shape_tree = TieredBTree.bulk_build(shape_pool, items,
                                            first_page_id=0)
        pool = make_pool(classifier_factory(shape_tree))
        tree = TieredBTree.bulk_build(pool, items, first_page_id=0)
        for key in range(0, 50_000, 37):  # warm
            tree.lookup(key)
        start = pool.clock.now
        for key in range(0, 50_000, 50_000 // probes):
            tree.lookup(key)
        return (pool.clock.now - start) / probes

    def test_hybrid_between_dram_and_cxl(self):
        """The Sec 3.1 answer: spanning tiers lands between the pure
        placements, far closer to DRAM than to CXL."""
        dram = self._lookup_cost(lambda _t: (lambda _p: 0))
        hybrid = self._lookup_cost(
            lambda tree: tree.page_classifier(0, 1))
        cxl = self._lookup_cost(lambda _t: (lambda _p: 1))
        assert dram < hybrid < cxl
        # Hybrid gives up less than half of the DRAM advantage.
        assert (hybrid - dram) < 0.5 * (cxl - dram)

    def test_hybrid_dram_footprint_is_tiny(self):
        pool = make_pool()
        items = [(i, i) for i in range(50_000)]
        tree = TieredBTree.bulk_build(pool, items, first_page_id=0)
        inner = len(tree.inner_page_ids)
        leaves = len(tree.leaf_page_ids)
        assert inner < leaves / 20  # inner levels are a rounding error


@given(keys=st.sets(st.integers(min_value=-10_000, max_value=10_000),
                    min_size=1, max_size=400),
       fanout=st.integers(min_value=2, max_value=16),
       leaf_capacity=st.integers(min_value=1, max_value=32))
@settings(max_examples=50, deadline=None)
def test_btree_matches_dict_reference(keys, fanout, leaf_capacity):
    """Property: lookups and range scans agree with a dict/sorted-list
    reference for any key set and any tree geometry."""
    items = [(key, key * 3) for key in sorted(keys)]
    pool = make_pool()
    tree = TieredBTree.bulk_build(pool, items, first_page_id=0,
                                  fanout=fanout,
                                  leaf_capacity=leaf_capacity)
    reference = dict(items)
    sample = sorted(keys)[::max(1, len(keys) // 20)]
    for key in sample:
        assert tree.lookup(key) == reference[key]
        assert tree.lookup(key + 20_001) is None
    lo, hi = min(keys), max(keys)
    scan = tree.range_scan(lo, hi)
    assert scan == items


@given(keys=st.sets(st.integers(min_value=0, max_value=2_000),
                    min_size=1, max_size=300),
       bounds=st.tuples(st.integers(min_value=-100, max_value=2_100),
                        st.integers(min_value=-100, max_value=2_100)),
       leaf_capacity=st.integers(min_value=1, max_value=16))
@settings(max_examples=50, deadline=None)
def test_btree_arbitrary_range_scans(keys, bounds, leaf_capacity):
    """Property: range scans over arbitrary (even empty or
    out-of-domain) bounds match the sorted-list reference."""
    items = [(key, key) for key in sorted(keys)]
    pool = make_pool()
    tree = TieredBTree.bulk_build(pool, items, first_page_id=0,
                                  fanout=4, leaf_capacity=leaf_capacity)
    lo, hi = bounds
    expected = [(k, k) for k in sorted(keys) if lo <= k <= hi]
    assert tree.range_scan(lo, hi) == expected
