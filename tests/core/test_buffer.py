"""The tiered buffer pool: residency, faults, eviction, migration."""

import pytest

from repro import config
from repro.core.buffer import Tier, TieredBufferPool
from repro.core.placement import DbCostPolicy, StaticPolicy
from repro.errors import BufferPoolError, PageFaultError
from repro.sim.interconnect import AccessPath
from repro.sim.memory import MemoryDevice
from repro.units import PAGE_SIZE


def make_pool(dram=4, cxl=8, backing=None, placement=None):
    tiers = [
        Tier(name="dram",
             path=AccessPath(device=MemoryDevice(config.local_ddr5())),
             capacity_pages=dram),
        Tier(name="cxl",
             path=AccessPath(device=MemoryDevice(config.cxl_expander_ddr5())),
             capacity_pages=cxl),
    ]
    return TieredBufferPool(
        tiers=tiers, backing=backing,
        placement=placement or DbCostPolicy(rebalance_interval=10_000),
    )


class TestResidency:
    def test_fault_installs_page(self):
        pool = make_pool()
        pool.access(1)
        assert pool.resident_pages == 1
        assert pool.tier_of(1) == 0
        assert pool.stats.misses == 1

    def test_hit_after_fault(self):
        pool = make_pool()
        pool.access(1)
        pool.access(1)
        assert pool.stats.hits == 1
        assert pool.stats.per_tier[0].hits == 1

    def test_each_page_in_exactly_one_tier(self):
        pool = make_pool(dram=2, cxl=4)
        for page in range(6):
            pool.access(page)
        seen = set()
        for tier_index in range(len(pool.tiers)):
            residents = set(pool.resident_in(tier_index))
            assert not (residents & seen)
            seen |= residents
        assert pool.resident_pages == len(seen)

    def test_tier_capacity_respected(self):
        pool = make_pool(dram=2, cxl=4)
        for page in range(20):
            pool.access(page)
        assert pool.tier_residents(0) <= 2
        assert pool.tier_residents(1) <= 4

    def test_resident_counts_match_enumeration(self):
        pool = make_pool(dram=3, cxl=5)
        for page in range(12):
            pool.access(page)
        for tier_index in range(2):
            assert (pool.tier_residents(tier_index)
                    == len(list(pool.resident_in(tier_index))))


class TestTiming:
    def test_dram_hit_faster_than_cxl_hit(self):
        pool = make_pool(dram=2, cxl=8)
        placement = pool.placement
        pool.access(1)  # in dram
        t_dram = pool.access(1)
        # Force a page into the CXL tier.
        pool.access(2)
        pool.migrate(2, 1)
        t_cxl = pool.access(2)
        del placement
        assert t_cxl > t_dram

    def test_miss_slower_than_hit_with_backing(self, pagefile):
        pool = make_pool(backing=pagefile)
        t_miss = pool.access(1)
        t_hit = pool.access(1)
        assert t_miss > 50 * t_hit  # NVMe fault vs DRAM hit

    def test_clock_advances(self):
        pool = make_pool()
        before = pool.clock.now
        pool.access(1)
        assert pool.clock.now > before

    def test_scan_access_cheaper_than_random(self):
        pool = make_pool()
        pool.access(1)
        pool.access(2)
        t_random = pool.access(1, nbytes=PAGE_SIZE)
        t_scan = pool.access(2, nbytes=PAGE_SIZE, is_scan=True)
        assert t_scan < t_random


class TestPinning:
    def test_pinned_pages_never_evicted(self):
        pool = make_pool(dram=2, cxl=2,
                         placement=StaticPolicy(lambda _p: 0))
        pool.access(1)
        pool.pin(1)
        for page in range(2, 10):
            pool.access(page)
        assert pool.tier_of(1) == 0
        pool.unpin(1)

    def test_all_pinned_raises(self):
        pool = make_pool(dram=1, cxl=1,
                         placement=StaticPolicy(lambda _p: 0))
        pool.access(1)
        pool.pin(1)
        with pytest.raises(PageFaultError):
            pool.access(2)

    def test_unpin_unpinned_raises(self):
        pool = make_pool()
        pool.access(1)
        with pytest.raises(BufferPoolError):
            pool.unpin(1)

    def test_pin_nonresident_raises(self):
        with pytest.raises(BufferPoolError):
            make_pool().pin(1)

    def test_migrate_pinned_raises(self):
        pool = make_pool()
        pool.access(1)
        pool.pin(1)
        with pytest.raises(BufferPoolError):
            pool.migrate(1, 1)


class TestMigration:
    def test_migrate_moves_page(self):
        pool = make_pool()
        pool.access(1)
        pool.migrate(1, 1)
        assert pool.tier_of(1) == 1
        assert pool.stats.migrations == 1

    def test_migrate_same_tier_is_noop(self):
        pool = make_pool()
        pool.access(1)
        assert pool.migrate(1, 0) == 0.0
        assert pool.stats.migrations == 0

    def test_migrate_nonresident_raises(self):
        with pytest.raises(BufferPoolError):
            make_pool().migrate(1, 1)

    def test_migrate_invalid_tier_raises(self):
        pool = make_pool()
        pool.access(1)
        with pytest.raises(BufferPoolError):
            pool.migrate(1, 5)

    def test_migration_charges_time(self):
        pool = make_pool()
        pool.access(1)
        elapsed = pool.migrate(1, 1)
        assert elapsed > 0
        assert pool.stats.migration_time_ns == pytest.approx(elapsed)


class TestDirtyAndWriteback:
    def test_write_marks_dirty(self):
        pool = make_pool()
        pool.access(1, write=True)
        assert pool.frame_of(1).dirty

    def test_eviction_of_dirty_counts_writeback(self, pagefile):
        pool = make_pool(dram=1, cxl=1, backing=pagefile,
                         placement=StaticPolicy(lambda _p: 0))
        pool.access(0, write=True)
        pool.access(1)  # evicts dirty page 0 straight to storage
        assert pool.stats.writebacks == 1

    def test_flush_all(self, pagefile):
        pool = make_pool(backing=pagefile)
        pool.access(0, write=True)
        pool.access(1, write=True)
        elapsed = pool.flush_all()
        assert elapsed > 0
        assert pool.stats.writebacks == 2
        assert not pool.frame_of(0).dirty


class TestAdoption:
    def test_adopt_resident(self, pagefile):
        pool = make_pool(backing=pagefile)
        page = pagefile.peek(3)
        pool.adopt_resident(page, tier_index=1)
        assert pool.tier_of(3) == 1
        # Access is a hit, not a fault.
        pool.access(3)
        assert pool.stats.misses == 0

    def test_adopt_duplicate_raises(self, pagefile):
        pool = make_pool(backing=pagefile)
        pool.adopt_resident(pagefile.peek(3), 1)
        with pytest.raises(BufferPoolError):
            pool.adopt_resident(pagefile.peek(3), 1)

    def test_adopt_to_full_tier_raises(self, pagefile):
        pool = make_pool(dram=4, cxl=2, backing=pagefile)
        pool.adopt_resident(pagefile.peek(0), 1)
        pool.adopt_resident(pagefile.peek(1), 1)
        with pytest.raises(BufferPoolError):
            pool.adopt_resident(pagefile.peek(2), 1)


class TestConstruction:
    def test_empty_tiers_rejected(self):
        with pytest.raises(BufferPoolError):
            TieredBufferPool(tiers=[])

    def test_zero_capacity_tier_rejected(self):
        with pytest.raises(BufferPoolError):
            Tier(name="bad",
                 path=AccessPath(device=MemoryDevice(config.local_ddr5())),
                 capacity_pages=0)

    def test_tier_from_device_path(self):
        path = AccessPath(device=MemoryDevice(
            config.local_ddr5(capacity_bytes=1024 * PAGE_SIZE)))
        tier = Tier.from_device_path("t", path, page_size=PAGE_SIZE)
        assert tier.capacity_pages == 1024

    def test_drop_all(self):
        pool = make_pool()
        for page in range(5):
            pool.access(page)
        pool.drop_all()
        assert pool.resident_pages == 0
        assert pool.tier_residents(0) == 0
