"""Simulated results are byte-identical to the pre-instrumentation seed.

The SimContext spine is observability only: these numbers were captured
from the repository BEFORE the refactor, on fixed Zipf traces, and must
reproduce exactly (``==`` on floats, no tolerance). If a change to the
instrumentation moves any of them, it perturbed the simulation.
"""

from repro.core.engine import ScaleUpEngine
from repro.core.placement import DbCostPolicy
from repro.sim.context import SimContext
from repro.sim.trace import MemoryTraceSink
from repro.workloads.ycsb import YCSBConfig, ycsb_trace


def _run_config_a(ctx=None):
    cfg = YCSBConfig(mix="A", num_pages=3_000, num_ops=20_000,
                     theta=0.99, think_ns=120.0, seed=1234)
    engine = ScaleUpEngine.build(
        dram_pages=600, cxl_pages=1_500, placement=DbCostPolicy(),
        name="regress", ctx=ctx,
    )
    engine.warm_with(ycsb_trace(cfg))
    return engine.run(ycsb_trace(cfg))


class TestSeedRegressionZipfA:
    """YCSB-A, theta=0.99, tiered DRAM+CXL pool with NVMe backing."""

    def test_byte_identical_to_seed(self):
        report = _run_config_a()
        assert report.ops == 20000
        assert report.total_ns == 33137994.27492147
        assert report.demand_ns == 30522609.146624696
        assert report.think_ns == 2400000.0
        assert report.hit_rate == 0.94045
        assert report.tier_hit_rates == [0.750275, 0.1591]
        assert report.migrations == 1699
        assert report.misses == 1191
        assert report.mean_latency_ns == 1526.1304573312348
        assert report.throughput_ops_per_s == 603536.8294796229

    def test_tracing_does_not_perturb_results(self):
        # Same trace with a live sink: identical simulated numbers.
        ctx = SimContext(trace=MemoryTraceSink())
        report = _run_config_a(ctx=ctx)
        assert report.total_ns == 33137994.27492147
        assert report.demand_ns == 30522609.146624696
        assert report.mean_latency_ns == 1526.1304573312348
        assert len(ctx.trace.spans) > 0  # and it actually traced


class TestSeedRegressionZipfB:
    """YCSB-B, theta=0.9, DRAM-only pool."""

    def test_byte_identical_to_seed(self):
        cfg = YCSBConfig(mix="B", num_pages=2_000, num_ops=10_000,
                         theta=0.9, think_ns=0.0, seed=99)
        engine = ScaleUpEngine.build(dram_pages=800, name="regress-dram")
        report = engine.run(ycsb_trace(cfg))
        assert report.ops == 10000
        assert report.total_ns == 30548489.843326334
        assert report.demand_ns == 30548489.843326334
        assert report.hit_rate == 0.7476
        assert report.tier_hit_rates == [0.7476]
        assert report.migrations == 0
        assert report.misses == 2524
        assert report.mean_latency_ns == 3054.8489843326333
