"""Lock table semantics and the 2PL executor."""

import pytest

from repro.core.locks import LockMode, LockTable
from repro.core.txn import (
    OLTPReport,
    TimedLockTable,
    TwoPhaseLockingExecutor,
)
from repro.errors import ConfigError, TransactionError
from repro.workloads.tpcc import RecordOp, Transaction


class TestLockTable:
    def test_shared_locks_compatible(self):
        table = LockTable()
        assert table.try_acquire(1, "k", LockMode.SHARED)
        assert table.try_acquire(2, "k", LockMode.SHARED)
        assert table.holders_of("k") == {1, 2}

    def test_exclusive_blocks_everyone(self):
        table = LockTable()
        assert table.try_acquire(1, "k", LockMode.EXCLUSIVE)
        assert not table.try_acquire(2, "k", LockMode.SHARED)
        assert not table.try_acquire(2, "k", LockMode.EXCLUSIVE)
        assert table.stats.conflicts == 2

    def test_shared_blocks_exclusive(self):
        table = LockTable()
        table.try_acquire(1, "k", LockMode.SHARED)
        assert not table.try_acquire(2, "k", LockMode.EXCLUSIVE)

    def test_reacquire_is_free(self):
        table = LockTable()
        table.try_acquire(1, "k", LockMode.EXCLUSIVE)
        assert table.try_acquire(1, "k", LockMode.EXCLUSIVE)
        assert table.try_acquire(1, "k", LockMode.SHARED)

    def test_upgrade_sole_holder(self):
        table = LockTable()
        table.try_acquire(1, "k", LockMode.SHARED)
        assert table.try_acquire(1, "k", LockMode.EXCLUSIVE)
        assert table.mode_of("k") is LockMode.EXCLUSIVE
        assert table.stats.upgrades == 1

    def test_upgrade_with_other_sharers_fails(self):
        table = LockTable()
        table.try_acquire(1, "k", LockMode.SHARED)
        table.try_acquire(2, "k", LockMode.SHARED)
        assert not table.try_acquire(1, "k", LockMode.EXCLUSIVE)

    def test_release_all(self):
        table = LockTable()
        table.try_acquire(1, "a", LockMode.SHARED)
        table.try_acquire(1, "b", LockMode.EXCLUSIVE)
        assert table.release_all(1) == 2
        assert table.active_locks == 0
        assert table.try_acquire(2, "b", LockMode.EXCLUSIVE)

    def test_release_keeps_other_holders(self):
        table = LockTable()
        table.try_acquire(1, "k", LockMode.SHARED)
        table.try_acquire(2, "k", LockMode.SHARED)
        table.release_all(1)
        assert table.holders_of("k") == {2}

    def test_held_count(self):
        table = LockTable()
        table.try_acquire(1, "a", LockMode.SHARED)
        table.try_acquire(1, "b", LockMode.SHARED)
        assert table.held_count(1) == 2
        assert table.held_count(2) == 0

    def test_consistency_check_passes(self):
        table = LockTable()
        table.try_acquire(1, "a", LockMode.SHARED)
        table.try_acquire(2, "a", LockMode.SHARED)
        table.try_acquire(3, "b", LockMode.EXCLUSIVE)
        table.check_consistency()


class TestTimedLockTable:
    def test_no_conflict_starts_immediately(self):
        table = TimedLockTable()
        start = table.earliest_start([("k", LockMode.EXCLUSIVE)], 10.0)
        assert start == 10.0

    def test_exclusive_hold_delays(self):
        table = TimedLockTable()
        table.register([("k", LockMode.EXCLUSIVE)], expiry_ns=100.0)
        start = table.earliest_start([("k", LockMode.SHARED)], 10.0)
        assert start == 100.0
        assert table.waits == 1
        assert table.wait_time_ns == pytest.approx(90.0)

    def test_shared_holds_compatible(self):
        table = TimedLockTable()
        table.register([("k", LockMode.SHARED)], expiry_ns=100.0)
        start = table.earliest_start([("k", LockMode.SHARED)], 10.0)
        assert start == 10.0

    def test_shared_blocks_exclusive(self):
        table = TimedLockTable()
        table.register([("k", LockMode.SHARED)], expiry_ns=100.0)
        start = table.earliest_start([("k", LockMode.EXCLUSIVE)], 10.0)
        assert start == 100.0

    def test_waits_for_latest_conflict(self):
        table = TimedLockTable()
        table.register([("a", LockMode.EXCLUSIVE)], expiry_ns=50.0)
        table.register([("b", LockMode.EXCLUSIVE)], expiry_ns=200.0)
        start = table.earliest_start(
            [("a", LockMode.SHARED), ("b", LockMode.SHARED)], 0.0
        )
        assert start == 200.0

    def test_prune_drops_expired(self):
        table = TimedLockTable()
        table.register([("k", LockMode.EXCLUSIVE)], expiry_ns=50.0)
        table.prune(100.0)
        start = table.earliest_start([("k", LockMode.EXCLUSIVE)], 60.0)
        assert start == 60.0


def _txn(txn_id, keys, write=True, home=0):
    txn = Transaction(txn_id, "payment", home)
    txn.ops = [RecordOp("t", home, k, write=write) for k in keys]
    return txn


def _flat_cost(txn):
    return 1_000.0 * len(txn.ops), 0


class TestTwoPhaseLockingExecutor:
    def test_disjoint_txns_run_in_parallel(self):
        executor = TwoPhaseLockingExecutor(_flat_cost, threads=4)
        txns = [_txn(i, [i]) for i in range(4)]
        report = executor.execute(txns)
        assert report.makespan_ns == pytest.approx(1_000.0)
        assert report.lock_wait_ns == 0.0

    def test_conflicting_txns_serialize(self):
        executor = TwoPhaseLockingExecutor(_flat_cost, threads=4)
        txns = [_txn(i, [7]) for i in range(4)]  # same key, all writes
        report = executor.execute(txns)
        assert report.makespan_ns == pytest.approx(4_000.0)
        assert report.lock_wait_ns > 0

    def test_readers_do_not_serialize(self):
        executor = TwoPhaseLockingExecutor(_flat_cost, threads=4)
        txns = [_txn(i, [7], write=False) for i in range(4)]
        report = executor.execute(txns)
        assert report.makespan_ns == pytest.approx(1_000.0)

    def test_throughput_math(self):
        report = OLTPReport(name="x", transactions=1_000,
                            makespan_ns=1e9)
        assert report.throughput_tps == pytest.approx(1_000.0)

    def test_more_threads_more_throughput(self):
        txns = [_txn(i, [i % 64]) for i in range(512)]
        slow = TwoPhaseLockingExecutor(_flat_cost, threads=2).execute(txns)
        fast = TwoPhaseLockingExecutor(_flat_cost, threads=16).execute(
            [_txn(i, [i % 64]) for i in range(512)]
        )
        assert fast.throughput_tps > slow.throughput_tps

    def test_empty_batch_rejected(self):
        executor = TwoPhaseLockingExecutor(_flat_cost)
        with pytest.raises(TransactionError):
            executor.execute([])

    def test_zero_threads_rejected(self):
        with pytest.raises(ConfigError):
            TwoPhaseLockingExecutor(_flat_cost, threads=0)

    def test_remote_txns_counted(self):
        def cost(txn):
            return 1_000.0, 3 if txn.remote else 0

        executor = TwoPhaseLockingExecutor(cost, threads=2)
        txns = [_txn(i, [i]) for i in range(4)]
        txns[0].remote = True
        report = executor.execute(txns)
        assert report.distributed_txns == 1
        assert report.remote_ops == 3
