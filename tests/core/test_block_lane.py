"""The block-native buffer pool lane: identity and residency table.

``TieredBufferPool.access_block`` resolves whole ``AccessBlock``
columns in numpy array ops against a dense residency table. These
tests pin the two contracts that lane must keep:

* **bit-identity** — any mix of scalar ``Access`` objects and
  ``AccessBlock`` chunks, on either lane, produces byte-identical
  simulated results (same perfbench digest) across MIN_BATCH_RUN
  boundaries, mid-run migrations, faults raised inside blocks, and
  concurrent-session contention;
* **residency-table consistency** — the dense table and the
  insertion-order index (``resident_ids_in`` / ``resident_in``) always
  agree with the frame map after evictions, migrations, ``drop_all``
  and ``resize_tier``.
"""

import math
import random

import numpy as np
import pytest

from repro import config
from repro.core.buffer import (
    MIN_BATCH_RUN,
    VEC_SEG,
    Tier,
    TieredBufferPool,
)
from repro.core.engine import ScaleUpEngine
from repro.core.placement import DbCostPolicy, OSPagingPolicy
from repro.perf.bench import _digest_report
from repro.sim.context import SimContext
from repro.sim.interconnect import AccessPath
from repro.sim.ladder import chain_values
from repro.sim.memory import MemoryDevice
from repro.workloads.scans import mixed_htap_blocks, mixed_htap_trace
from repro.workloads.traces import Access, AccessBlock


def fingerprint(trace, fast, *, dram=256, cxl=900, placement=None,
                with_storage=True):
    """Run *trace* on a fresh engine; digest every simulated quantity."""
    engine = ScaleUpEngine.build(
        dram_pages=dram, cxl_pages=cxl, placement=placement,
        with_storage=with_storage, name="block-lane-test",
        ctx=SimContext(),
    )
    engine.pool.set_fast_lane(fast)
    report = engine.run(trace)
    return _digest_report(engine, report), report


def random_trace(seed, ops=4_000, pages=700):
    """A run-structured random trace: shapes repeat for random run
    lengths so the coalescer sees runs on both sides of
    MIN_BATCH_RUN, then change so segments stay short enough to
    exercise the per-access walk as well as the vector lane."""
    rng = random.Random(seed)
    out = []
    while len(out) < ops:
        run = rng.choice([1, 2, MIN_BATCH_RUN, MIN_BATCH_RUN + 1, 8, 40])
        write = rng.random() < 0.25
        is_scan = rng.random() < 0.3
        nbytes = 4096 if is_scan else 64
        think = rng.choice([0.0, 50.0])
        base = rng.randrange(pages)
        for i in range(run):
            out.append(Access(
                page_id=(base + i) % pages, write=write,
                is_scan=is_scan, nbytes=nbytes, think_ns=think,
            ))
    return out[:ops]


def random_mix(scalar, seed):
    """Randomly repackage a scalar trace into interleaved scalar
    stretches and AccessBlock chunks (lossless)."""
    rng = random.Random(seed)
    mixed = []
    i = 0
    while i < len(scalar):
        chunk = min(rng.randrange(1, 600), len(scalar) - i)
        part = scalar[i:i + chunk]
        if rng.random() < 0.5:
            mixed.append(AccessBlock.from_accesses(part))
        else:
            mixed.extend(part)
        i += chunk
    return mixed


class TestRandomizedMixedIdentity:
    """Random traces, random block boundaries, both lanes: one digest."""

    @pytest.mark.parametrize("seed", [0, 17, 91])
    def test_mixed_delivery_and_lanes_agree(self, seed):
        scalar = random_trace(seed)
        mixed = random_mix(scalar, seed + 1)
        ref, _ = fingerprint(scalar, False)
        for fast in (False, True):
            got, _ = fingerprint(mixed, fast)
            assert got == ref, f"lane fast={fast} diverged (seed {seed})"

    def test_min_batch_run_boundaries(self):
        # Runs of exactly MIN_BATCH_RUN-1 / MIN_BATCH_RUN /
        # MIN_BATCH_RUN+1 repeated accesses: the batch threshold must
        # not change the physics, only the code path.
        trace = []
        for rep in (MIN_BATCH_RUN - 1, MIN_BATCH_RUN, MIN_BATCH_RUN + 1):
            for page in range(0, 300, 7):
                trace.extend(
                    Access(page_id=page, nbytes=64)
                    for _ in range(rep)
                )
        block = [AccessBlock.from_accesses(trace)]
        ref, _ = fingerprint(trace, False)
        for fast in (False, True):
            got, _ = fingerprint(block, fast)
            assert got == ref

    def test_mid_run_migrations(self):
        # A tiny rebalance interval forces placement migrations while
        # block runs are in flight; the lanes must still agree and the
        # run must actually migrate (otherwise the test is vacuous).
        htap = dict(oltp_pages=200, olap_pages=500, oltp_ops=2_000,
                    olap_repeats=2, oltp_per_olap=1, seed=5)
        policy = lambda: DbCostPolicy(rebalance_interval=64)  # noqa: E731
        slow, rep_slow = fingerprint(
            mixed_htap_blocks(**htap), False, placement=policy())
        fast, rep_fast = fingerprint(
            mixed_htap_blocks(**htap), True, placement=policy())
        assert rep_fast.migrations > 0
        assert fast == slow

    def test_faults_inside_blocks(self):
        # Capacities far below the working set: most block rows fault
        # and evict. Identity must hold down to backing-store stats.
        trace = list(mixed_htap_trace(
            oltp_pages=150, olap_pages=400, oltp_ops=1_200, seed=13))
        blocks = [AccessBlock.from_accesses(trace)]
        ref, rep = fingerprint(trace, False, dram=32, cxl=64)
        assert rep.misses > len(trace) // 4
        for fast in (False, True):
            got, _ = fingerprint(blocks, fast, dram=32, cxl=64)
            assert got == ref

    def test_block_walk_route(self):
        # OSPagingPolicy's placement note is not content-blind, so
        # the fast lane must take the per-access _block_walk route
        # rather than the integer-exact _block_exact lane — and still
        # match the scalar replay bit for bit.
        trace = list(mixed_htap_trace(
            oltp_pages=200, olap_pages=400, oltp_ops=1_500, seed=7))
        blocks = [AccessBlock.from_accesses(trace)]
        engine = ScaleUpEngine.build(
            dram_pages=256, cxl_pages=900,
            placement=OSPagingPolicy(), name="walk-route",
            ctx=SimContext(),
        )
        note = engine.pool._placement_note
        assert not getattr(note, "content_blind", False)
        ref, _ = fingerprint(trace, False, placement=OSPagingPolicy())
        got, _ = fingerprint(blocks, True, placement=OSPagingPolicy())
        assert got == ref


class TestSessionContention:
    """access_run under concurrent sessions: lanes agree."""

    def _engine(self, fast):
        engine = ScaleUpEngine.build(
            dram_pages=256, cxl_pages=2_000,
            placement=DbCostPolicy(), with_storage=False,
            name="contended", ctx=SimContext(),
        )
        engine.pool.set_fast_lane(fast)
        return engine

    def _digest(self, engine, report):
        stats = engine.pool.stats
        return (
            tuple(sorted(
                (sid, s.ops, repr(s.total_ns), repr(s.demand_ns),
                 s.misses)
                for sid, s in report.sessions.items()
            )),
            repr(engine.pool.clock.now),
            repr(stats.demand_time_ns),
            repr(stats.fault_time_ns),
            stats.accesses, stats.misses, stats.migrations,
        )

    def test_contended_sessions_lane_identity(self):
        htap = dict(oltp_pages=400, olap_pages=700, oltp_ops=2_500,
                    seed=21)
        digests = []
        for fast in (False, True):
            engine = self._engine(fast)
            report = engine.run_sessions([
                list(mixed_htap_trace(**htap)),
                list(mixed_htap_blocks(**htap)),
            ])
            digests.append(self._digest(engine, report))
        assert digests[0] == digests[1]

    def test_access_run_matches_access_batch(self):
        # access_run is the sessions' columnar entry point; on runs
        # long enough for the vector setup it must charge exactly what
        # access_batch charges for the same ids.
        rng = random.Random(3)
        ids = [rng.randrange(500) for _ in range(VEC_SEG * 4)]
        engines = [self._engine(True) for _ in range(2)]
        for engine in engines:
            for page in range(500):
                engine.pool.access(page)
        got = engines[0].pool.access_run(
            np.asarray(ids, dtype=np.int64), nbytes=64)
        want = engines[1].pool.access_batch(ids, nbytes=64)
        assert repr(got) == repr(want)
        assert self._pool_digest(engines[0]) == \
            self._pool_digest(engines[1])

    @staticmethod
    def _pool_digest(engine):
        stats = engine.pool.stats
        return (
            repr(engine.pool.clock.now), repr(stats.demand_time_ns),
            stats.accesses, stats.hits, stats.misses,
            tuple(t.hits for t in stats.per_tier),
        )


def make_pool(dram=4, cxl=8):
    tiers = [
        Tier(name="dram",
             path=AccessPath(device=MemoryDevice(config.local_ddr5())),
             capacity_pages=dram),
        Tier(name="cxl",
             path=AccessPath(device=MemoryDevice(config.cxl_expander_ddr5())),
             capacity_pages=cxl),
    ]
    return TieredBufferPool(
        tiers=tiers, placement=DbCostPolicy(rebalance_interval=10_000),
    )


def assert_residency_consistent(pool):
    """The dense residency table, the insertion-order index and the
    frame map must tell the same story."""
    seen = {}
    for tier_index in range(len(pool.tiers)):
        ids = pool.resident_ids_in(tier_index)
        assert ids.dtype == np.int64
        listed = list(pool.resident_in(tier_index))
        assert listed == ids.tolist()
        assert len(listed) == pool.tier_residents(tier_index)
        for pid in listed:
            assert pool.tier_of(pid) == tier_index
            assert pid not in seen, "page resident in two tiers"
            seen[pid] = tier_index
    assert pool.resident_pages == len(seen)
    assert set(seen) == set(pool._frames)
    for pid, frame in pool._frames.items():
        assert seen[pid] == frame.tier_index


class TestResidencyTableConsistency:
    def test_after_evictions(self):
        pool = make_pool(dram=3, cxl=5)
        for page in range(40):
            pool.access(page)
        assert pool.stats.misses == 40
        assert_residency_consistent(pool)

    def test_after_migrations(self):
        pool = make_pool(dram=4, cxl=8)
        for page in range(6):
            pool.access(page)
        for page in list(pool.resident_in(0)):
            pool.migrate(page, 1)
        assert pool.tier_residents(0) == 0
        assert_residency_consistent(pool)
        # And back again into the now-empty fast tier.
        for page in list(pool.resident_in(1))[:3]:
            pool.migrate(page, 0)
        assert_residency_consistent(pool)

    def test_after_drop_all(self):
        pool = make_pool()
        for page in range(10):
            pool.access(page)
        pool.drop_all()
        assert pool.resident_pages == 0
        assert_residency_consistent(pool)
        # The table must come back clean for reuse.
        for page in range(10, 16):
            pool.access(page)
        assert_residency_consistent(pool)

    def test_after_resize_tier(self):
        pool = make_pool(dram=6, cxl=8)
        for page in range(12):
            pool.access(page)
        pool.resize_tier(0, 2)  # shrink: forces spill out of dram
        assert pool.tier_residents(0) <= 2
        assert_residency_consistent(pool)
        pool.resize_tier(0, 10)  # grow back; nothing moves
        assert_residency_consistent(pool)
        for page in range(12, 24):
            pool.access(page)
        assert_residency_consistent(pool)

    def test_block_lane_keeps_table_consistent(self):
        engine = ScaleUpEngine.build(
            dram_pages=32, cxl_pages=64, name="res-table",
            ctx=SimContext(),
        )
        engine.pool.set_fast_lane(True)
        trace = list(mixed_htap_trace(
            oltp_pages=100, olap_pages=200, oltp_ops=800, seed=2))
        engine.run([AccessBlock.from_accesses(trace)])
        engine.pool.sync_frame_stats()
        assert_residency_consistent(engine.pool)


def scalar_chain(x, vals, cls):
    """The reference semantics chain_values must reproduce exactly."""
    out = []
    for c in cls:
        x = x + vals[c]
        out.append(x)
    return x, out


class TestChainValues:
    """The addition-chain kernel under the fast lane's float model."""

    def test_random_chain_bit_identical(self):
        rng = np.random.default_rng(5)
        vals = np.array([0.0, 13.25, 250.0, 1e-9, np.nan])
        cls = rng.integers(0, 4, size=5_000).astype(np.int64)
        out = np.empty(cls.shape[0])
        x = chain_values(100.0, vals, cls, out)
        want_x, want_out = scalar_chain(100.0, vals.tolist(), cls)
        assert repr(x) == repr(want_x)
        assert out.tolist() == want_out

    def test_scalar_step_fallback_from_zero(self):
        # x == 0.0 has no binade: every step until x grows must take
        # the scalar-fallback path, including the zero-delta class
        # that keeps x pinned at 0.0.
        vals = np.array([0.0, 1e-300, 2.5])
        cls = np.array([0, 0, 1, 0, 1, 2, 0, 2, 1], dtype=np.int64)
        out = np.empty(cls.shape[0])
        x = chain_values(0.0, vals, cls, out)
        want_x, want_out = scalar_chain(0.0, vals.tolist(), cls)
        assert repr(x) == repr(want_x)
        assert out.tolist() == want_out

    def test_exact_half_tie_rounds_by_parity(self):
        # x in [1, 2) has ulp 2^-52; a delta of exactly 1.5 ulp makes
        # every addition an exact-half tie, which IEEE resolves by
        # mantissa parity — a value-dependent bit the vector lane must
        # hand to the scalar step.
        tie = math.ldexp(3.0, -53)
        vals = np.array([tie, math.ldexp(1.0, -52)])
        cls = np.array([0, 1] * 200, dtype=np.int64)
        out = np.empty(cls.shape[0])
        x = chain_values(1.0, vals, cls, out)
        want_x, want_out = scalar_chain(1.0, vals.tolist(), cls)
        assert repr(x) == repr(want_x)
        assert out.tolist() == want_out

    def test_binade_crossing(self):
        # Deltas large enough to push x across power-of-two boundaries
        # repeatedly; each crossing restarts the integer stretch.
        vals = np.array([0.75])
        cls = np.zeros(64, dtype=np.int64)
        out = np.empty(64)
        x = chain_values(1.0, vals, cls, out)
        want_x, want_out = scalar_chain(1.0, vals.tolist(), cls)
        assert repr(x) == repr(want_x)
        assert out.tolist() == want_out
