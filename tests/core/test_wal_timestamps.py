"""WAL backends and timestamp oracles (OLTP mechanisms, Sec 4)."""

import pytest

from repro.core.timestamps import (
    CXLSharedOracle,
    LocalAtomicOracle,
    RPCOracle,
    compare_oracles,
)
from repro.core.wal import (
    BatteryDRAMLogBackend,
    CXLNVMLogBackend,
    NVMeLogBackend,
    RDMAReplicatedLogBackend,
    WriteAheadLog,
)
from repro.errors import ConfigError
from repro.storage.disk import StorageDevice
from repro.units import us


def all_backends():
    return [
        NVMeLogBackend(StorageDevice()),
        CXLNVMLogBackend.build(),
        RDMAReplicatedLogBackend.build(),
        BatteryDRAMLogBackend.build(),
    ]


class TestBackends:
    def test_latency_ordering(self):
        """battery DRAM < CXL NVM < RDMA-replicated < NVMe for a
        typical 4 KiB force."""
        times = {
            backend.name: backend.force_time_ns(4_096)
            for backend in all_backends()
        }
        assert times["battery-dram"] < times["cxl-nvm"]
        assert times["cxl-nvm"] < times["rdma-replicated"]
        assert times["rdma-replicated"] < times["nvme"]

    def test_cxl_nvm_sub_microsecond_small_force(self):
        backend = CXLNVMLogBackend.build()
        assert backend.force_time_ns(256) < us(2.0)

    def test_nvme_pays_full_write_io(self):
        backend = NVMeLogBackend(StorageDevice())
        assert backend.force_time_ns(64) >= us(20.0)

    def test_replication_count_matters(self):
        two = RDMAReplicatedLogBackend.build(replicas=2)
        one = RDMAReplicatedLogBackend.build(replicas=1)
        # Parallel writes: latency comparable, but both >= one replica.
        assert two.force_time_ns(4_096) >= one.force_time_ns(4_096)


class TestWriteAheadLog:
    def test_group_commit_batches(self):
        log = WriteAheadLog(BatteryDRAMLogBackend.build(), group_size=4)
        results = [log.append(128, now_ns=float(i)) for i in range(4)]
        assert results[:3] == [None, None, None]
        assert results[3] is not None
        assert log.forces == 1
        assert log.commit_latency.count == 4

    def test_first_record_waits_longest(self):
        log = WriteAheadLog(BatteryDRAMLogBackend.build(), group_size=2)
        log.append(128, now_ns=0.0)
        done = log.append(128, now_ns=1_000.0)
        assert done is not None
        # First record's latency includes the wait for the batch.
        assert log.commit_latency.max >= 1_000.0
        assert log.commit_latency.max > log.commit_latency.min

    def test_flush_partial_batch(self):
        log = WriteAheadLog(BatteryDRAMLogBackend.build(), group_size=8)
        log.append(128, now_ns=0.0)
        assert log.pending == 1
        done = log.flush(now_ns=10.0)
        assert done is not None
        assert log.pending == 0

    def test_flush_empty_is_noop(self):
        log = WriteAheadLog(BatteryDRAMLogBackend.build())
        assert log.flush(0.0) is None

    def test_device_serializes_forces(self):
        log = WriteAheadLog(NVMeLogBackend(StorageDevice()),
                            group_size=1)
        first = log.append(4_096, now_ns=0.0)
        second = log.append(4_096, now_ns=0.0)
        assert second > first

    def test_throughput_bound_ordering(self):
        slow = WriteAheadLog(NVMeLogBackend(StorageDevice()),
                             group_size=8)
        fast = WriteAheadLog(CXLNVMLogBackend.build(), group_size=8)
        assert fast.throughput_bound_tps(256) > \
            10 * slow.throughput_bound_tps(256)

    def test_bigger_groups_raise_throughput_on_nvme(self):
        small = WriteAheadLog(NVMeLogBackend(StorageDevice()),
                              group_size=1)
        large = WriteAheadLog(NVMeLogBackend(StorageDevice()),
                              group_size=64)
        assert large.throughput_bound_tps(256) > \
            10 * small.throughput_bound_tps(256)

    def test_invalid_configs(self):
        with pytest.raises(ConfigError):
            WriteAheadLog(BatteryDRAMLogBackend.build(), group_size=0)
        log = WriteAheadLog(BatteryDRAMLogBackend.build())
        with pytest.raises(ConfigError):
            log.append(0, now_ns=0.0)


class TestTimestampOracles:
    def test_monotonic(self):
        for oracle in (LocalAtomicOracle(), CXLSharedOracle(),
                       RPCOracle()):
            last = 0
            for _ in range(10):
                ts, _cost = oracle.next_timestamp()
                assert ts > last
                last = ts

    def test_cost_ordering(self):
        local = LocalAtomicOracle()
        shared = CXLSharedOracle(contending_hosts=4)
        rpc = RPCOracle()
        costs = {
            o.name: o.next_timestamp()[1] for o in (local, shared, rpc)
        }
        assert costs["local-atomic"] < costs["cxl-shared"]
        assert costs["cxl-shared"] < costs["rpc"]

    def test_contention_raises_shared_cost(self):
        quiet = CXLSharedOracle(contending_hosts=1)
        busy = CXLSharedOracle(contending_hosts=8)
        assert busy.next_timestamp()[1] > quiet.next_timestamp()[1]

    def test_rpc_batching_amortizes(self):
        unbatched = RPCOracle(batch=1)
        batched = RPCOracle(batch=100)
        for _ in range(100):
            unbatched.next_timestamp()
            batched.next_timestamp()
        assert batched.stats.mean_cost_ns < \
            unbatched.stats.mean_cost_ns / 10

    def test_compare_oracles_shape(self):
        comparison = compare_oracles(hosts=4, draws=100)
        by_name = {name: cost for name, cost, _tps in comparison.rows}
        assert by_name["local-atomic"] < by_name["cxl-shared"]
        assert by_name["cxl-shared"] < by_name["rpc"]

    def test_invalid_configs(self):
        with pytest.raises(ConfigError):
            CXLSharedOracle(contending_hosts=0)
        with pytest.raises(ConfigError):
            RPCOracle(batch=0)
