"""The Sec 4 operator library: where does each operator belong?"""

import pytest

from repro import config
from repro.core.ndp import (
    NDP_OPERATORS,
    NDPOperatorLibrary,
    NDPOpSpec,
)
from repro.errors import ConfigError
from repro.sim.interconnect import AccessPath, Link
from repro.sim.memory import MemoryDevice

MIB = 1024 * 1024


@pytest.fixture
def library() -> NDPOperatorLibrary:
    path = AccessPath(device=MemoryDevice(config.cxl_expander_ddr5()),
                      links=(Link(config.cxl_port()),))
    return NDPOperatorLibrary(path)


class TestOpSpecs:
    def test_paper_candidates_present(self):
        # Sec 4: "compression and decompression, encryption and
        # decryption, selection, projection, and filtering with LIKE".
        for op in ("compression", "decompression", "encryption",
                   "decryption", "selection", "projection",
                   "like_filter"):
            assert op in NDP_OPERATORS

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigError):
            NDPOpSpec("bad", controller_rate=0, host_rate=1,
                      output_ratio=1)
        with pytest.raises(ConfigError):
            NDPOpSpec("bad", controller_rate=1, host_rate=1,
                      output_ratio=0)

    def test_unknown_op_rejected(self, library):
        with pytest.raises(ConfigError):
            library.place("teleportation", MIB)


class TestPlacements:
    def test_shrinking_ops_offload(self, library):
        """Selection/LIKE/compression shrink data: near-data wins."""
        for op in ("selection", "like_filter", "compression"):
            placement = library.place(op, 256 * MIB)
            assert placement.offload, op
            assert placement.ndp_fabric_bytes < \
                placement.host_fabric_bytes

    def test_expanding_op_stays_on_host(self, library):
        """Decompression triples the bytes: shipping the expanded
        output erases the near-data win (the Sec 4 question has a
        non-trivial answer)."""
        placement = library.place("decompression", 256 * MIB)
        assert not placement.offload
        assert placement.ndp_fabric_bytes > placement.host_fabric_bytes

    def test_crypto_offloads_on_compute(self, library):
        """Encryption moves the same bytes either way; the dedicated
        crypto engine wins on compute throughput."""
        placement = library.place("encryption", 256 * MIB)
        assert placement.offload
        assert placement.ndp_fabric_bytes == placement.host_fabric_bytes

    def test_speedup_definition(self, library):
        placement = library.place("like_filter", 64 * MIB)
        assert placement.speedup == pytest.approx(
            placement.host_time_ns / placement.ndp_time_ns
        )

    def test_placement_table_covers_library(self, library):
        table = library.placement_table(MIB)
        assert {p.op for p in table} == set(NDP_OPERATORS)

    def test_tiny_inputs_prefer_host(self, library):
        """Offload invocation latency dominates small inputs."""
        placement = library.place("selection", 4 * 1024)
        assert not placement.offload

    def test_costs_scale_with_input(self, library):
        small = library.offload_time_ns("selection", MIB)
        large = library.offload_time_ns("selection", 64 * MIB)
        assert large > small
