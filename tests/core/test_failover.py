"""End-to-end failover downtime (Sec 2.6 + Sec 3.2)."""

import pytest

from repro.core.failover import FailoverOrchestrator
from repro.errors import ConfigError
from repro.units import ms


class TestOutcomes:
    def test_pooled_downtime_dominated_by_replay(self):
        pooled = FailoverOrchestrator().cxl_pooled()
        assert pooled.log_replay_ns > pooled.detection_ns
        assert pooled.log_replay_ns > pooled.state_recovery_ns

    def test_classic_downtime_dominated_by_detection_and_restart(self):
        classic = FailoverOrchestrator().classic()
        assert classic.detection_ns > ms(100)
        assert classic.state_recovery_ns > ms(10)

    def test_total_is_sum(self):
        outcome = FailoverOrchestrator().cxl_pooled()
        assert outcome.total_downtime_ns == pytest.approx(
            outcome.detection_ns + outcome.state_recovery_ns
            + outcome.log_replay_ns
        )

    def test_pooled_beats_classic_by_10x(self):
        pooled, classic, ratio = FailoverOrchestrator().compare()
        assert ratio > 10
        assert pooled.total_downtime_ns < classic.total_downtime_ns

    def test_detection_and_state_gap_is_enormous(self):
        pooled, classic, _ = FailoverOrchestrator().compare()
        assert (classic.detection_ns + classic.state_recovery_ns) > \
            1_000 * (pooled.detection_ns + pooled.state_recovery_ns)

    def test_bigger_working_set_hurts_classic_only(self):
        small = FailoverOrchestrator(working_set_pages=100_000)
        large = FailoverOrchestrator(working_set_pages=1_000_000)
        assert (large.classic().state_recovery_ns
                > small.classic().state_recovery_ns)
        assert large.cxl_pooled().state_recovery_ns == \
            small.cxl_pooled().state_recovery_ns

    def test_log_tail_scales_replay_for_both(self):
        short = FailoverOrchestrator(log_tail_bytes=1024 * 1024)
        long = FailoverOrchestrator(log_tail_bytes=256 * 1024 * 1024)
        assert long.cxl_pooled().log_replay_ns > \
            short.cxl_pooled().log_replay_ns
        assert long.classic().log_replay_ns > \
            short.classic().log_replay_ns

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            FailoverOrchestrator(working_set_pages=0)
        with pytest.raises(ConfigError):
            FailoverOrchestrator(log_tail_bytes=0)
