"""Scale-up shared-memory engine vs scale-out 2PC baseline (Sec 3.3)."""

import pytest

from repro.core.scaleout import ScaleOutConfig, ScaleOutEngine
from repro.core.shared import SharedEngineConfig, SharedRackEngine
from repro.errors import ConfigError
from repro.workloads.tpcc import TPCCLite


def txn_batch(remote_probability, count=600, warehouses=8, seed=5):
    gen = TPCCLite(num_warehouses=warehouses,
                   remote_probability=remote_probability, seed=seed)
    return list(gen.transactions(count))


class TestSharedRackEngine:
    def test_no_distributed_transactions_ever(self):
        engine = SharedRackEngine()
        report = engine.run(txn_batch(0.5))
        assert report.distributed_txns > 0  # txns marked remote...
        assert report.remote_ops == 0       # ...but no remote ops paid

    def test_fabric_latency_from_topology(self):
        engine = SharedRackEngine()
        # GFAM through two switches: inside the Pond envelope.
        assert 200.0 <= engine.fabric_read_ns <= 400.0

    def test_lock_cas_is_one_fabric_round(self):
        engine = SharedRackEngine()
        assert engine.lock_acquire_ns() == engine.fabric_read_ns

    def test_release_is_local(self):
        engine = SharedRackEngine()
        assert engine.lock_release_ns() < engine.lock_acquire_ns()

    def test_cache_hit_rate_lowers_read_cost(self):
        cold = SharedRackEngine(SharedEngineConfig(cache_hit_rate=0.0))
        warm = SharedRackEngine(SharedEngineConfig(cache_hit_rate=0.9))
        assert warm.data_read_ns() < cold.data_read_ns()

    def test_throughput_scales_with_hosts(self):
        # Plenty of warehouses so lock contention (payments write the
        # warehouse row) does not cap parallelism before threads do.
        small = SharedRackEngine(SharedEngineConfig(num_hosts=2))
        large = SharedRackEngine(SharedEngineConfig(num_hosts=8))
        r_small = small.run(txn_batch(0.1, count=1_500, warehouses=64))
        r_large = large.run(txn_batch(0.1, count=1_500, warehouses=64))
        assert r_large.throughput_tps > 2 * r_small.throughput_tps

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            SharedEngineConfig(num_hosts=0)
        with pytest.raises(ConfigError):
            SharedEngineConfig(cache_hit_rate=1.5)


class TestLockTableCoherence:
    """Sec 3.3: measured coherency traffic of the shared lock table."""

    def _txns(self):
        gen = TPCCLite(num_warehouses=8, remote_probability=0.0,
                       seed=9)
        return list(gen.transactions(800))

    def test_round_robin_assignment_ping_pongs(self):
        engine = SharedRackEngine(SharedEngineConfig(num_hosts=4))
        stats = engine.measure_lock_table_coherence(self._txns())
        # Hot lock words (warehouse/district rows) bounce hosts.
        assert stats.invalidations_per_write > 0.05

    def test_affinity_scheduling_collapses_traffic(self):
        engine = SharedRackEngine(SharedEngineConfig(num_hosts=4))
        txns = self._txns()
        round_robin = engine.measure_lock_table_coherence(
            list(txns), assign_by_warehouse=False)
        affinity = engine.measure_lock_table_coherence(
            list(txns), assign_by_warehouse=True)
        # Affinity removes warehouse-local ping-pong; the residual
        # traffic is the genuinely shared item table plus lock-line
        # false sharing, so the drop is real but not total.
        assert affinity.invalidations_per_write < \
            0.8 * round_robin.invalidations_per_write

    def test_single_host_has_no_invalidations(self):
        engine = SharedRackEngine(SharedEngineConfig(num_hosts=1))
        stats = engine.measure_lock_table_coherence(self._txns())
        assert stats.invalidations_sent == 0


class TestScaleOutEngine:
    def test_partitioning_by_warehouse(self):
        engine = ScaleOutEngine(ScaleOutConfig(num_nodes=4))
        from repro.workloads.tpcc import RecordOp
        assert engine.node_of(RecordOp("stock", 5, 0)) == 1
        assert engine.node_of(RecordOp("item", -1, 0)) == -1  # replicated

    def test_single_home_txn_one_participant(self):
        engine = ScaleOutEngine(ScaleOutConfig(num_nodes=4))
        batch = txn_batch(0.0)
        for txn in batch[:50]:
            assert len(engine.participants(txn)) == 1

    def test_remote_txns_pay_remote_ops(self):
        engine = ScaleOutEngine(ScaleOutConfig(num_nodes=4))
        report = engine.run(txn_batch(0.3))
        assert report.remote_ops > 0
        assert report.distributed_txns > 0

    def test_local_only_has_no_remote_ops(self):
        engine = ScaleOutEngine(ScaleOutConfig(num_nodes=4))
        report = engine.run(txn_batch(0.0))
        assert report.remote_ops == 0

    def test_distribution_hurts_throughput(self):
        local = ScaleOutEngine(ScaleOutConfig(num_nodes=4)).run(
            txn_batch(0.0))
        distributed = ScaleOutEngine(ScaleOutConfig(num_nodes=4)).run(
            txn_batch(0.3))
        assert local.throughput_tps > 1.5 * distributed.throughput_tps


class TestMultiRackScaleUp:
    """Sec 3.3: the shared engine spanning a small number of racks."""

    def test_cross_rack_engine_still_works(self):
        from repro.sim.topology import RackTopology
        rack = RackTopology.multi_rack(racks=2, hosts_per_rack=2)
        engine = SharedRackEngine(
            SharedEngineConfig(num_hosts=4), rack=rack)
        report = engine.run(txn_batch(0.2))
        assert report.throughput_tps > 0
        assert report.remote_ops == 0  # still no "remote" concept

    def test_multi_rack_beats_scaleout_under_distribution(self):
        from repro.sim.topology import RackTopology
        txns = txn_batch(0.3)
        rack = RackTopology.multi_rack(racks=2, hosts_per_rack=2)
        up = SharedRackEngine(
            SharedEngineConfig(num_hosts=4), rack=rack).run(txns)
        out = ScaleOutEngine(ScaleOutConfig(num_nodes=4)).run(txns)
        assert up.throughput_tps > out.throughput_tps


class TestTheCrossover:
    """The paper's Sec 3.3 argument as a measurable fact."""

    def test_scaleout_wins_when_nothing_is_distributed(self):
        up = SharedRackEngine(SharedEngineConfig(num_hosts=4))
        out = ScaleOutEngine(ScaleOutConfig(num_nodes=4))
        r_up = up.run(txn_batch(0.0))
        r_out = out.run(txn_batch(0.0))
        assert r_out.throughput_tps > r_up.throughput_tps

    def test_scaleup_wins_under_heavy_distribution(self):
        up = SharedRackEngine(SharedEngineConfig(num_hosts=4))
        out = ScaleOutEngine(ScaleOutConfig(num_nodes=4))
        r_up = up.run(txn_batch(0.3))
        r_out = out.run(txn_batch(0.3))
        assert r_up.throughput_tps > r_out.throughput_tps

    def test_scaleup_is_insensitive_to_distribution(self):
        up = SharedRackEngine(SharedEngineConfig(num_hosts=4))
        r_lo = up.run(txn_batch(0.0))
        up2 = SharedRackEngine(SharedEngineConfig(num_hosts=4))
        r_hi = up2.run(txn_batch(0.3))
        ratio = r_lo.throughput_tps / r_hi.throughput_tps
        assert 0.8 < ratio < 1.25
