"""Churn-driven admission against the pooled capacity, event-driven."""

import numpy as np
import pytest

from repro.core.autoscale import ExpanderScaler
from repro.core.elastic import PagePool
from repro.errors import ConfigError
from repro.serving.churn import ChurnConfig, ChurnSimulator, assign_churn
from repro.serving.tenants import TenantTable
from repro.units import SECOND, ms, us


def make_table(working_sets, arrivals=None, lifetimes=None):
    """A hand-built columnar population with pinned churn columns."""
    n = len(working_sets)
    table = TenantTable(
        klass=np.zeros(n, np.int8),
        memory_share=np.full(n, 0.5),
        working_set_pages=np.asarray(working_sets, np.int64),
        theta=np.zeros(n, np.float64),
        read_ratio=np.full(n, 0.5),
        num_ops=np.full(n, 100, np.int64),
        think_ns=np.full(n, 1_000.0),
        seed=np.arange(n, dtype=np.int64),
    )
    if arrivals is not None:
        table.arrival_ns[:] = arrivals
    if lifetimes is not None:
        table.departure_ns[:] = table.arrival_ns + np.asarray(lifetimes)
    return table


class TestAssignChurn:
    def test_deterministic_and_ordered(self):
        cfg = ChurnConfig(arrival_rate_per_s=1_000.0, mean_lifetime_s=2.0,
                          seed=11)
        a = TenantTable.generate(500)
        b = TenantTable.generate(500)
        assign_churn(a, cfg)
        assign_churn(b, cfg)
        assert a.arrival_ns.tobytes() == b.arrival_ns.tobytes()
        assert a.departure_ns.tobytes() == b.departure_ns.tobytes()
        assert (np.diff(a.arrival_ns) >= 0).all()   # cumulative gaps
        assert (a.departure_ns > a.arrival_ns).all()

    def test_rates_land_near_their_means(self):
        cfg = ChurnConfig(arrival_rate_per_s=1_000.0, mean_lifetime_s=2.0)
        table = TenantTable.generate(5_000)
        assign_churn(table, cfg)
        gaps = np.diff(table.arrival_ns)
        assert np.isclose(gaps.mean(), SECOND / 1_000.0, rtol=0.1)
        lifetimes = table.departure_ns - table.arrival_ns
        assert np.isclose(lifetimes.mean(), 2.0 * SECOND, rtol=0.1)

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            ChurnConfig(arrival_rate_per_s=0.0)
        with pytest.raises(ConfigError):
            ChurnConfig(mean_lifetime_s=-1.0)


class TestAdmission:
    def test_uncontended_population_never_waits(self):
        table = make_table([10, 10, 10], arrivals=[ms(1), ms(2), ms(3)],
                           lifetimes=[ms(5), ms(5), ms(5)])
        pool = PagePool(100)
        report = ChurnSimulator(table, pool).run()
        assert report.admitted == 3
        assert report.departed == 3
        assert report.waited == 0
        assert report.peak_leased_pages == 30
        assert pool.leased_pages == 0   # every departure returned pages

    def test_full_pool_queues_until_departure(self):
        # Tenant 1 needs the pages tenant 0 holds; it is admitted only
        # at departure + reclaim, and the wait is accounted.
        table = make_table([80, 80], arrivals=[0.0, ms(1)],
                           lifetimes=[ms(10), ms(10)])
        pool = PagePool(100)
        sim = ChurnSimulator(table, pool, reclaim_ns=us(200.0))
        report = sim.run()
        assert report.admitted == 2
        assert report.waited == 1
        assert report.peak_queue == 1
        # Waited from its arrival at 1 ms to the release at
        # 10 ms + 200 us reclaim.
        expected_wait = ms(10) + us(200.0) - ms(1)
        assert report.wait_quantile(1.0) >= expected_wait * 0.9
        assert report.horizon_ns >= ms(20)

    def test_queue_is_strict_fifo(self):
        # The big head-of-line tenant blocks the small one behind it
        # even though the small one would fit: admission order never
        # depends on size.
        table = make_table([90, 60, 5],
                           arrivals=[0.0, ms(1), ms(2)],
                           lifetimes=[ms(10), ms(10), ms(10)])
        pool = PagePool(100)
        report = ChurnSimulator(table, pool).run()
        assert report.admitted == 3
        assert report.waited == 2   # both queued behind the 90-pager

    def test_oversized_tenant_rejected(self):
        table = make_table([500, 10], arrivals=[0.0, ms(1)],
                           lifetimes=[ms(5), ms(5)])
        report = ChurnSimulator(table, PagePool(100)).run()
        assert report.rejected == 1
        assert report.admitted == 1

    def test_empty_table_rejected(self):
        with pytest.raises(ConfigError):
            ChurnSimulator(make_table([]), PagePool(10)).run()

    def test_negative_reclaim_rejected(self):
        with pytest.raises(ConfigError):
            ChurnSimulator(make_table([1]), PagePool(10),
                           reclaim_ns=-1.0)


class TestElasticity:
    def test_backlog_grows_the_pool_then_drains(self):
        # Ten 50-page tenants against one 100-page expander: backlog
        # forces a second expander; once everyone leaves, the scaler
        # retires it again.
        table = make_table([50] * 4, arrivals=[0.0, ms(1), ms(2), ms(3)],
                           lifetimes=[ms(30)] * 4)
        scaler = ExpanderScaler(pages_per_expander=100, min_expanders=1,
                                max_expanders=4, cooldown_ns=us(1.0))
        pool = PagePool(scaler.capacity_pages)
        report = ChurnSimulator(table, pool, scaler=scaler).run()
        assert report.admitted == 4
        assert report.grows >= 1
        assert report.peak_leased_pages == 200
        assert report.shrinks >= 1
        assert report.final_capacity_pages == 100
        assert pool.capacity_pages == scaler.capacity_pages

    def test_generated_population_end_to_end(self):
        table = TenantTable.generate(300)
        assign_churn(table, ChurnConfig(arrival_rate_per_s=2_000.0,
                                        mean_lifetime_s=0.5))
        scaler = ExpanderScaler(pages_per_expander=1 << 22)
        pool = PagePool(scaler.capacity_pages)
        report = ChurnSimulator(table, pool, scaler=scaler).run()
        assert report.admitted + report.rejected == 300
        assert report.departed == report.admitted
        assert pool.leased_pages == 0
