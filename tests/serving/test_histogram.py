"""Exact mergeable histograms: the byte-identity workhorse."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serving.histogram import MergeableHistogram, slowdown_histogram


def small_hist() -> MergeableHistogram:
    return MergeableHistogram(np.array([1.0, 2.0, 3.0]))


class TestBuckets:
    def test_bucket_semantics(self):
        # Bucket 0: <= edges[0]; bucket i: (edges[i-1], edges[i]];
        # overflow: > edges[-1]. Edge values land in the lower bucket.
        h = small_hist()
        h.add_many(np.array([0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 10.0]))
        assert h.counts.tolist() == [2, 2, 2, 1]
        assert h.total == 7

    def test_add_matches_add_many(self):
        a, b = small_hist(), small_hist()
        values = [0.1, 1.7, 2.2, 9.0]
        for v in values:
            a.add(v)
        b.add_many(np.array(values))
        assert np.array_equal(a.counts, b.counts)

    def test_invalid_edges_rejected(self):
        with pytest.raises(ConfigError):
            MergeableHistogram(np.array([1.0]))
        with pytest.raises(ConfigError):
            MergeableHistogram(np.array([1.0, 1.0, 2.0]))

    def test_invalid_counts_rejected(self):
        with pytest.raises(ConfigError):
            MergeableHistogram(np.array([1.0, 2.0]), np.array([1, 2]))
        with pytest.raises(ConfigError):
            MergeableHistogram(np.array([1.0, 2.0]),
                               np.array([1, -1, 2]))


class TestMerge:
    def test_merge_is_exact_and_order_invariant(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(0.0, 5.0, size=10_000)
        whole = small_hist()
        whole.add_many(values)
        # Any partition, merged in any order, folds to identical bytes.
        parts = [small_hist() for _ in range(7)]
        for i, part in enumerate(parts):
            part.add_many(values[i::7])
        forward = parts[0].copy()
        for part in parts[1:]:
            forward.merge(part)
        backward = parts[-1].copy()
        for part in reversed(parts[:-1]):
            backward.merge(part)
        assert forward.counts.tobytes() == whole.counts.tobytes()
        assert backward.counts.tobytes() == whole.counts.tobytes()

    def test_merge_requires_identical_edges(self):
        with pytest.raises(ConfigError):
            small_hist().merge(
                MergeableHistogram(np.array([1.0, 2.0])))


class TestQuantiles:
    def test_quantile_returns_bucket_upper_edge(self):
        h = small_hist()
        h.add_many(np.array([0.5, 1.5, 2.5, 10.0]))
        assert h.quantile(0.0) == 1.0     # underflow bucket
        assert h.quantile(0.5) == 2.0     # rank 2 in (1, 2]
        assert h.quantile(0.75) == 3.0
        assert h.quantile(1.0) == float("inf")  # overflow bucket

    def test_quantile_validation(self):
        h = small_hist()
        with pytest.raises(ConfigError):
            h.quantile(0.5)   # empty
        h.add(1.5)
        with pytest.raises(ConfigError):
            h.quantile(1.5)

    def test_count_at_or_below_is_exact_on_grid_edges(self):
        h = small_hist()
        h.add_many(np.array([0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 10.0]))
        assert h.count_at_or_below(1.0) == 2
        assert h.count_at_or_below(2.0) == 4
        assert h.count_at_or_below(3.0) == 6

    def test_cdf_is_cumulative(self):
        h = small_hist()
        h.add_many(np.array([0.5, 1.5, 2.5, 10.0]))
        cdf = h.cdf()
        fractions = [f for _edge, f in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0


class TestSerialisation:
    def test_dict_round_trip(self):
        h = slowdown_histogram()
        h.add_many(1.0 + np.geomspace(1e-4, 8.0, 1_000))
        back = MergeableHistogram.from_dict(h.to_dict())
        assert np.array_equal(back.edges, h.edges)
        assert np.array_equal(back.counts, h.counts)

    def test_sparse_counts(self):
        h = slowdown_histogram()
        h.add(1.5)
        assert len(h.to_dict()["counts"]) == 1
