"""Sharded streaming executor: shard invariance, kernels, metrics."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serving.executor import (
    PENALTY_THRESHOLDS,
    ServingConfig,
    bucket_grid,
    measure_buckets,
    run_serving,
)
from repro.serving.tenants import CLASS_NAMES, TenantTable
from repro.workloads.cloudmix import THETA_CHOICES, WORKING_SET_CHOICES

# Small representative traces: kernels are measured once per module
# and shared across tests (they are pure functions of the config).
CFG = ServingConfig(rep_ops=300)


@pytest.fixture(scope="module")
def kernels():
    return measure_buckets(CFG)


class TestKernels:
    def test_grid_covers_every_bucket(self):
        grid = bucket_grid()
        assert len(grid) == len(WORKING_SET_CHOICES) * len(THETA_CHOICES)
        assert len(set(grid)) == len(grid)

    def test_cxl_demand_exceeds_dram(self, kernels):
        for k in kernels:
            assert k.d_cxl_ns > k.d_dram_ns > 0

    def test_kernels_deterministic(self, kernels):
        again = measure_buckets(CFG)
        assert [(k.d_dram_ns, k.d_cxl_ns, k.d_scaleout_ns)
                for k in kernels] == \
               [(k.d_dram_ns, k.d_cxl_ns, k.d_scaleout_ns)
                for k in again]

    def test_remote_fraction_moves_scaleout_demand(self):
        near = measure_buckets(ServingConfig(rep_ops=300,
                                             remote_fraction=0.02))
        far = measure_buckets(ServingConfig(rep_ops=300,
                                            remote_fraction=0.6))
        assert all(f.d_scaleout_ns > n.d_scaleout_ns
                   for n, f in zip(near, far))


class TestShardInvariance:
    def test_any_shard_count_folds_to_identical_bytes(self, kernels):
        table = TenantTable.generate(1_003)
        reference = run_serving(table, CFG, buckets=kernels)
        for shards, chunk_rows in ((4, 65_536), (7, 64), (16, 13)):
            cfg = ServingConfig(rep_ops=CFG.rep_ops, shards=shards,
                                chunk_rows=chunk_rows)
            report = run_serving(table, cfg, buckets=kernels)
            for baseline in ("cxl", "scaleout"):
                assert (report.hist[baseline].counts.tobytes()
                        == reference.hist[baseline].counts.tobytes())
                assert (report.threshold_counts[baseline].tobytes()
                        == reference.threshold_counts[baseline].tobytes())
            assert report.metrics() == reference.metrics()

    def test_class_totals_partition_population(self, kernels):
        table = TenantTable.generate(500)
        report = run_serving(table, CFG, buckets=kernels)
        assert int(report.class_totals.sum()) == 500


class TestReport:
    def test_metrics_shape(self, kernels):
        report = run_serving(TenantTable.generate(400), CFG,
                             buckets=kernels)
        metrics = report.metrics()
        assert metrics["tenants"] == 400
        for baseline in ("cxl", "scaleout"):
            entry = metrics[baseline]
            assert 1.0 <= entry["p50"] <= entry["p99"] <= entry["p999"]
            assert 0.0 <= entry["share_under_1pct"] \
                <= entry["share_under_5pct"] \
                <= entry["share_under_25pct"] <= 1.0
            for name in CLASS_NAMES:
                assert f"{name}_share_under_1pct" in entry
        assert len(metrics["buckets"]) == len(bucket_grid())

    def test_compute_bound_tenants_barely_penalised(self, kernels):
        # The Pond shape: think-time-dominated tenants sit far inside
        # the <1% penalty band; the population as a whole does not.
        report = run_serving(TenantTable.generate(2_000), CFG,
                             buckets=kernels)
        compute_bound = CLASS_NAMES.index("compute_bound")
        assert report.share_under("cxl", 0.01, klass=compute_bound) > 0.8
        assert report.share_under("cxl", 0.01) < 0.5

    def test_share_under_requires_grid_threshold(self, kernels):
        report = run_serving(TenantTable.generate(50), CFG,
                             buckets=kernels)
        assert 0.123 not in PENALTY_THRESHOLDS
        with pytest.raises(ValueError):
            report.share_under("cxl", 0.123)


class TestValidation:
    def test_empty_table_rejected(self, kernels):
        table = TenantTable.generate(10).shard(0, 100)  # empty view
        assert len(table) == 0
        with pytest.raises(ConfigError):
            run_serving(table, CFG, buckets=kernels)

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            ServingConfig(shards=0)
        with pytest.raises(ConfigError):
            ServingConfig(chunk_rows=0)
        with pytest.raises(ConfigError):
            ServingConfig(rep_ops=0)
        with pytest.raises(ConfigError):
            ServingConfig(remote_fraction=1.5)
