"""Gated memory-scaling smoke test for the serving subsystem.

The ISSUE acceptance bar is a 10^6-tenant sweep cell in under 1 GiB of
peak RSS. Running that in the test suite would be slow, so this test
measures peak RSS of a full pondscale cell (generation, churn through
the event simulator, sharded streaming fold) in fresh subprocesses at
three sub-scales, fits rss = slope * tenants + intercept, and asserts
the linear extrapolation to 10^6 tenants stays under the bar. The fit
is honest because every per-tenant structure in the subsystem is a
flat numpy column (73 bytes/tenant), so memory really is affine in the
population size.

Gated behind ``REPRO_SCALE_SMOKE=1`` (CI sets it; local `make test`
skips) because the largest subprocess simulates 10^5 churning tenants.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_SCALE_SMOKE") != "1",
    reason="set REPRO_SCALE_SMOKE=1 to run the serving scale smoke",
)

GIB = 1 << 30
SCALES = (20_000, 50_000, 100_000)

# One full serving cell, then peak RSS in KiB on stdout. ru_maxrss is
# KiB on Linux; macOS reports bytes and is normalised below.
_CELL_SCRIPT = """
import resource
import sys

from repro.core.autoscale import ExpanderScaler
from repro.core.elastic import PagePool
from repro.serving import (
    ChurnConfig,
    ChurnSimulator,
    ServingConfig,
    TenantTable,
    assign_churn,
    run_serving,
)

n = int(sys.argv[1])
table = TenantTable.generate(n, seed=11)
assign_churn(table, ChurnConfig(
    arrival_rate_per_s=2_000.0, mean_lifetime_s=0.5, seed=12))
scaler = ExpanderScaler(pages_per_expander=4_194_304, max_expanders=4)
pool = PagePool(scaler.capacity_pages)
churn = ChurnSimulator(table, pool, scaler=scaler).run()
assert churn.admitted + churn.rejected == n
report = run_serving(table, ServingConfig(rep_ops=300))
assert report.tenants == n
rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
if sys.platform == "darwin":
    rss //= 1024
print(rss)
"""


def _peak_rss_kib(tenants: int) -> int:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", _CELL_SCRIPT, str(tenants)],
        capture_output=True, text=True, env=env, check=True,
    )
    return int(out.stdout.strip())


def test_million_tenant_cell_extrapolates_under_1_gib():
    points = [(n, _peak_rss_kib(n)) for n in SCALES]
    tenants = np.array([n for n, _ in points], dtype=np.float64)
    rss_bytes = np.array([kib * 1024.0 for _, kib in points])
    slope, intercept = np.polyfit(tenants, rss_bytes, 1)
    projected = slope * 1_000_000 + intercept
    detail = (
        f"measured {[(n, f'{kib / 1024:.0f} MiB') for n, kib in points]},"
        f" slope {slope:.1f} B/tenant,"
        f" projected 10^6-tenant RSS {projected / GIB:.3f} GiB"
    )
    # The columnar subsystem spends ~73 B/tenant on the table plus
    # bounded churn/histogram state; anywhere near object-per-tenant
    # (~kB/tenant) blows the bar.
    assert projected < 1 * GIB, detail
    assert slope < 500, detail  # bytes per tenant, fit sanity
