"""Columnar tenant table: identity with the object generator, shards."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serving.tenants import COLUMNS, TenantTable
from repro.workloads.cloudmix import generate_population


class TestIdentity:
    def test_rows_equal_generate_population_at_158(self):
        # The lossless adapter contract: every row materialises to the
        # exact CloudWorkload the object generator would have built.
        table = TenantTable.generate(158)
        objects = generate_population(158)
        for i, expected in enumerate(objects):
            assert table.workload(i) == expected

    def test_rows_equal_at_other_counts(self):
        for count in (1, 7, 400):
            table = TenantTable.generate(count)
            objects = generate_population(count)
            assert [w for w in table.workloads()] == objects

    def test_from_workloads_round_trip(self):
        table = TenantTable.generate(97, seed=13)
        packed = TenantTable.from_workloads(generate_population(97, seed=13))
        for name, _dtype in COLUMNS:
            assert np.array_equal(getattr(table, name),
                                  getattr(packed, name)), name

    def test_column_dtypes(self):
        table = TenantTable.generate(10)
        for name, dtype in COLUMNS:
            assert getattr(table, name).dtype == np.dtype(dtype), name


class TestShape:
    def test_len_and_nbytes(self):
        table = TenantTable.generate(1_000)
        assert len(table) == 1_000
        # The whole point: well under 100 bytes per tenant, so 10^6
        # tenants stay comfortably inside a 1 GiB cell.
        assert table.nbytes / len(table) < 100

    def test_default_presence_columns(self):
        table = TenantTable.generate(5)
        assert (table.arrival_ns == 0.0).all()
        assert np.isinf(table.departure_ns).all()

    def test_mismatched_column_length_rejected(self):
        cols = TenantTable.generate(4).columns()
        cols["theta"] = cols["theta"][:2]
        with pytest.raises(ConfigError):
            TenantTable(**cols)

    def test_row_index_out_of_range(self):
        table = TenantTable.generate(3)
        with pytest.raises(ConfigError):
            table.workload(3)
        with pytest.raises(ConfigError):
            table.workload(-1)


class TestShards:
    def test_shards_partition_the_table(self):
        table = TenantTable.generate(101)
        shards = [table.shard(i, 7) for i in range(7)]
        assert sum(len(s) for s in shards) == len(table)
        rebuilt = np.concatenate([s.klass for s in shards])
        assert np.array_equal(rebuilt, table.klass)

    def test_shards_are_zero_copy_views(self):
        table = TenantTable.generate(64)
        shard = table.shard(1, 4)
        assert np.shares_memory(shard.theta, table.theta)

    def test_shard_rows_keep_identity(self):
        # base_index keeps names and seeds stable, so a shard's row i
        # is the full table's row (start + i) — byte for byte.
        table = TenantTable.generate(100)
        shard = table.shard(2, 4)
        assert shard.base_index == 50
        assert shard.workload(0) == table.workload(50)

    def test_bad_shard_arguments(self):
        table = TenantTable.generate(10)
        with pytest.raises(ConfigError):
            table.shard(0, 0)
        with pytest.raises(ConfigError):
            table.shard(4, 4)
