"""Trace equivalence suite: block emitters vs scalar generators.

The columnar pipeline's contract is that every block-emitting
generator produces the **elementwise-identical** access sequence to
its scalar twin — same RNG draws, same op expansion, same values in
every field. These tests gate that contract (and the lossless
adapters) directly, independent of the engine.
"""

import numpy as np
import pytest

from repro.workloads.cloudmix import generate_population
from repro.workloads.scans import (
    mixed_htap_blocks,
    mixed_htap_trace,
    scan_blocks,
    scan_trace,
)
from repro.workloads.tpcc import TPCCLite
from repro.workloads.traces import (
    Access,
    AccessBlock,
    accesses_to_blocks,
    blocks_to_accesses,
)
from repro.workloads.ycsb import YCSBConfig, ycsb_blocks, ycsb_trace


def expand(blocks):
    return list(blocks_to_accesses(blocks))


class TestYCSBEquivalence:
    @pytest.mark.parametrize("mix", sorted("ABCDEF"))
    def test_all_mixes_elementwise_identical(self, mix):
        config = YCSBConfig(mix=mix, num_pages=400, num_ops=2500,
                            seed=13)
        assert expand(ycsb_blocks(config)) == list(ycsb_trace(config))

    def test_odd_block_size_chunk_boundaries(self):
        config = YCSBConfig(mix="E", num_pages=300, num_ops=1200,
                            seed=3)
        scalar = list(ycsb_trace(config))
        for block_ops in (1, 7, 257, 100_000):
            assert expand(ycsb_blocks(config, block_ops=block_ops)) \
                == scalar

    def test_insert_cursor_growth_matches(self):
        # Mix D is insert-heavy enough to advance the tail cursor;
        # the vectorised cumulative-sum cursor must match the scalar
        # one draw for draw.
        config = YCSBConfig(mix="D", num_pages=64, num_ops=4000,
                            records_per_page=2, seed=21)
        scalar = list(ycsb_trace(config))
        assert expand(ycsb_blocks(config)) == scalar
        assert max(a.page_id for a in scalar) > 64  # cursor moved

    def test_zero_ops(self):
        config = YCSBConfig(mix="A", num_pages=16, num_ops=0)
        assert expand(ycsb_blocks(config)) == list(ycsb_trace(config))


class TestScanEquivalence:
    def test_scan_blocks_identical(self):
        scalar = list(scan_trace(5, 1000, repeats=3, write=True,
                                 think_ns=7.5))
        assert expand(scan_blocks(5, 1000, repeats=3, write=True,
                                  think_ns=7.5, block_ops=333)) == scalar

    def test_scan_blocks_validate(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            list(scan_blocks(0, 0))

    def test_htap_interleave_identical(self):
        params = dict(oltp_pages=300, olap_pages=700, oltp_ops=2000,
                      olap_repeats=2, oltp_per_olap=4, seed=5)
        scalar = list(mixed_htap_trace(**params))
        assert expand(mixed_htap_blocks(**params)) == scalar

    def test_htap_per_op_alternation_identical(self):
        # oltp_per_olap=1 is the engine coalescer's worst case; the
        # block interleave must still reproduce it exactly.
        params = dict(oltp_pages=200, olap_pages=400, oltp_ops=1500,
                      olap_repeats=2, oltp_per_olap=1, seed=23)
        scalar = list(mixed_htap_trace(**params))
        assert expand(mixed_htap_blocks(**params, block_ops=128)) \
            == scalar


class TestTPCCEquivalence:
    def test_flat_trace_blocks_identical(self):
        scalar = list(TPCCLite(num_warehouses=2, seed=3).flat_trace(150))
        blocks = TPCCLite(num_warehouses=2, seed=3) \
            .flat_trace_blocks(150, block_ops=128)
        assert expand(blocks) == scalar


class TestCloudmixEquivalence:
    def test_trace_blocks_identical(self):
        for workload in generate_population(count=8, num_ops=600,
                                            seed=7):
            assert expand(workload.trace_blocks(block_ops=77)) \
                == list(workload.trace())


class TestAdapters:
    def test_round_trip_lossless(self):
        scalar = list(ycsb_trace(YCSBConfig(
            mix="F", num_pages=100, num_ops=500, seed=2)))
        packed = list(accesses_to_blocks(iter(scalar), block_ops=19))
        assert all(type(b) is AccessBlock for b in packed)
        assert expand(packed) == scalar

    def test_accesses_to_blocks_passes_blocks_through(self):
        block = AccessBlock.from_accesses([Access(1), Access(2)])
        mixed = [Access(0), block, Access(3)]
        out = list(accesses_to_blocks(mixed, block_ops=100))
        assert out[1] is block
        assert [a.page_id for a in expand(out)] == [0, 1, 2, 3]

    def test_from_accesses_dtypes(self):
        block = AccessBlock.from_accesses(
            [Access(7, write=True, is_scan=True, nbytes=4096,
                    think_ns=1.5)])
        assert block.page_id.dtype == np.int64
        assert block.write.dtype == np.bool_
        assert block.think_ns.dtype == np.float64
        assert len(block) == 1


class TestSegmentBounds:
    def test_empty_and_single(self):
        assert AccessBlock.from_accesses([]).segment_bounds() == [0]
        assert AccessBlock.from_accesses([Access(1)]).segment_bounds() \
            == [0, 1]

    def test_shape_changes_cut_runs(self):
        block = AccessBlock.from_accesses([
            Access(0, think_ns=5.0),
            Access(1, think_ns=5.0),
            Access(2, write=True, think_ns=5.0),   # write flips
            Access(3, write=True, think_ns=5.0),
            Access(4, write=True, think_ns=2.0),   # think flips
            Access(5, is_scan=True, nbytes=4096, think_ns=2.0),
        ])
        assert block.segment_bounds() == [0, 2, 4, 5, 6]

    def test_uniform_block_is_one_run(self):
        block = next(iter(scan_blocks(0, 512, block_ops=512)))
        assert block.segment_bounds() == [0, 512]
