"""Workload generators: traces, Zipf, YCSB, scans, cloudmix."""

import pytest

from repro.errors import ConfigError
from repro.workloads.cloudmix import (
    BOUNDEDNESS_CLASSES,
    class_counts,
    generate_population,
)
from repro.workloads.scans import mixed_htap_trace, scan_trace
from repro.workloads.traces import Access, interleave, take
from repro.workloads.ycsb import (
    YCSB_MIXES,
    YCSBConfig,
    working_set_pages,
    ycsb_trace,
)
from repro.workloads.zipf import ZipfGenerator


class TestAccess:
    def test_defaults(self):
        access = Access(page_id=5)
        assert not access.write
        assert not access.is_scan
        assert access.nbytes == 64
        assert access.think_ns == 0.0

    def test_frozen(self):
        access = Access(page_id=5)
        with pytest.raises(AttributeError):
            access.page_id = 6


class TestInterleave:
    def test_round_robin(self):
        a = [Access(page_id=i) for i in (1, 2)]
        b = [Access(page_id=i) for i in (10, 20)]
        merged = [x.page_id for x in interleave(a, b)]
        assert merged == [1, 10, 2, 20]

    def test_weights(self):
        a = [Access(page_id=i) for i in range(4)]
        b = [Access(page_id=i + 100) for i in range(2)]
        merged = [x.page_id for x in interleave(a, b, weights=[2, 1])]
        assert merged[:3] == [0, 1, 100]

    def test_uneven_lengths_drain(self):
        a = [Access(page_id=1)]
        b = [Access(page_id=i + 10) for i in range(5)]
        merged = list(interleave(a, b))
        assert len(merged) == 6

    def test_weight_arity_checked(self):
        with pytest.raises(ValueError):
            list(interleave([], [], weights=[1]))

    def test_take(self):
        trace = (Access(page_id=i) for i in range(100))
        assert len(list(take(trace, 7))) == 7
        assert len(list(take([Access(page_id=1)], 5))) == 1


class TestZipf:
    def test_ranks_in_range(self):
        zipf = ZipfGenerator(100, theta=0.99)
        samples = zipf.sample(1_000)
        assert samples.min() >= 0
        assert samples.max() < 100

    def test_skew_concentrates_mass(self):
        zipf = ZipfGenerator(10_000, theta=0.99)
        # The classic YCSB shape: top 10% of items draw most traffic.
        assert zipf.hot_set_mass(0.1) > 0.6

    def test_theta_zero_is_uniform(self):
        zipf = ZipfGenerator(1_000, theta=0.0)
        assert zipf.hot_set_mass(0.1) == pytest.approx(0.1, abs=0.01)

    def test_probability_sums_to_one(self):
        zipf = ZipfGenerator(50, theta=0.9)
        total = sum(zipf.probability_of_rank(r) for r in range(50))
        assert total == pytest.approx(1.0)

    def test_rank_zero_most_likely(self):
        zipf = ZipfGenerator(100, theta=0.99)
        assert (zipf.probability_of_rank(0)
                > zipf.probability_of_rank(50))

    def test_scramble_spreads_hot_keys(self):
        plain = ZipfGenerator(1_000, theta=0.99, seed=1)
        scrambled = ZipfGenerator(1_000, theta=0.99, scramble=True, seed=1)
        assert plain.sample(100).tolist() != scrambled.sample(100).tolist()

    def test_deterministic(self):
        z1 = ZipfGenerator(100, seed=5)
        z2 = ZipfGenerator(100, seed=5)
        assert z1.sample(50).tolist() == z2.sample(50).tolist()

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            ZipfGenerator(0)
        with pytest.raises(ConfigError):
            ZipfGenerator(10, theta=-1.0)
        with pytest.raises(ConfigError):
            ZipfGenerator(10).sample(-1)


class TestYCSB:
    def test_mix_c_is_read_only(self):
        cfg = YCSBConfig(mix="C", num_pages=100, num_ops=500)
        assert not any(a.write for a in ycsb_trace(cfg))

    def test_mix_a_is_half_updates(self):
        cfg = YCSBConfig(mix="A", num_pages=100, num_ops=4_000, seed=2)
        writes = sum(1 for a in ycsb_trace(cfg) if a.write)
        assert 0.4 < writes / 4_000 < 0.6

    def test_mix_e_emits_scans(self):
        cfg = YCSBConfig(mix="E", num_pages=100, num_ops=200)
        accesses = list(ycsb_trace(cfg))
        assert any(a.is_scan for a in accesses)
        assert len(accesses) > 200  # scans expand into page runs

    def test_mix_f_rmw_pairs(self):
        cfg = YCSBConfig(mix="F", num_pages=100, num_ops=1_000, seed=3)
        accesses = list(ycsb_trace(cfg))
        reads = sum(1 for a in accesses if not a.write)
        writes = sum(1 for a in accesses if a.write)
        assert writes > 0
        assert reads >= writes

    def test_inserts_extend_key_space(self):
        cfg = YCSBConfig(mix="D", num_pages=100, num_ops=2_000, seed=4)
        max_page = max(a.page_id for a in ycsb_trace(cfg))
        assert max_page >= 100

    def test_unknown_mix_rejected(self):
        with pytest.raises(ConfigError):
            YCSBConfig(mix="Z")

    def test_working_set_much_smaller_than_population(self):
        cfg = YCSBConfig(num_pages=100_000, theta=0.99)
        ws = working_set_pages(cfg, mass=0.9)
        assert ws < 50_000

    def test_deterministic(self):
        cfg = YCSBConfig(mix="A", num_pages=50, num_ops=100, seed=9)
        t1 = [(a.page_id, a.write) for a in ycsb_trace(cfg)]
        t2 = [(a.page_id, a.write) for a in ycsb_trace(cfg)]
        assert t1 == t2


class TestScans:
    def test_scan_covers_range(self):
        accesses = list(scan_trace(first_page=10, num_pages=5, repeats=2))
        assert len(accesses) == 10
        assert {a.page_id for a in accesses} == set(range(10, 15))
        assert all(a.is_scan for a in accesses)
        assert all(a.nbytes == 4096 for a in accesses)

    def test_invalid_scan(self):
        with pytest.raises(ConfigError):
            list(scan_trace(0, 0))

    def test_htap_mixes_point_and_scan(self):
        trace = list(mixed_htap_trace(
            oltp_pages=50, olap_pages=100, oltp_ops=200, olap_repeats=1,
        ))
        scans = [a for a in trace if a.is_scan]
        points = [a for a in trace if not a.is_scan]
        assert scans and points
        assert all(a.page_id >= 50 for a in scans)
        assert all(a.page_id < 50 or a.write is not None for a in points)


class TestCloudMix:
    def test_population_size(self):
        population = generate_population(count=158)
        assert len(population) == 158

    def test_class_shares_roughly_pond(self):
        population = generate_population(count=158)
        compute = sum(1 for w in population if w.klass == "compute_bound")
        mostly = sum(1 for w in population if w.klass == "mostly_compute")
        assert compute == pytest.approx(0.26 * 158, abs=2)
        assert mostly == pytest.approx(0.17 * 158, abs=2)

    def test_memory_share_drives_think_time(self):
        population = generate_population(count=20)
        bound = [w for w in population if w.klass == "memory_bound"]
        compute = [w for w in population if w.klass == "compute_bound"]
        if bound and compute:
            assert min(c.think_ns for c in compute) > \
                max(b.think_ns for b in bound)

    def test_traces_respect_working_set(self):
        workload = generate_population(count=5)[0]
        pages = {a.page_id for a in workload.trace()}
        assert max(pages) < workload.working_set_pages

    def test_deterministic(self):
        p1 = generate_population(count=10, seed=3)
        p2 = generate_population(count=10, seed=3)
        assert [w.memory_share for w in p1] == [w.memory_share for w in p2]

    def test_invalid_count(self):
        with pytest.raises(ConfigError):
            generate_population(count=0)

    def test_class_counts_sum_exactly_for_all_small_counts(self):
        for count in range(1, 401):
            counts = class_counts(count)
            assert sum(counts) == count
            assert all(c >= 0 for c in counts)
            assert len(counts) == len(BOUNDEDNESS_CLASSES)

    def test_class_counts_largest_remainder_at_158(self):
        # floors [41, 26, 63, 26] leave two seats; the two largest
        # fractional remainders (.86 for both 0.17 classes) absorb them.
        assert class_counts(158) == [41, 27, 63, 27]

    def test_class_counts_track_shares(self):
        counts = class_counts(10_000)
        shares = [s for _n, s, _lo, _hi in BOUNDEDNESS_CLASSES]
        for got, share in zip(counts, shares):
            assert abs(got - share * 10_000) < 1.0

    def test_invalid_num_ops(self):
        with pytest.raises(ConfigError):
            generate_population(count=5, num_ops=0)
