"""Trace persistence and profiling."""

import pytest

from repro.errors import ConfigError
from repro.workloads import Access, YCSBConfig, scan_trace, ycsb_trace
from repro.workloads.replay import load_trace, profile_trace, save_trace


class TestRoundTrip:
    def test_save_load_identity(self, tmp_path):
        original = list(ycsb_trace(YCSBConfig(
            mix="A", num_pages=100, num_ops=500, seed=1)))
        path = tmp_path / "trace.npz"
        written = save_trace(path, original)
        assert written == len(original)
        loaded = list(load_trace(path))
        assert loaded == original

    def test_scan_flags_preserved(self, tmp_path):
        original = list(scan_trace(0, 20, repeats=1))
        path = tmp_path / "scan.npz"
        save_trace(path, original)
        loaded = list(load_trace(path))
        assert all(a.is_scan for a in loaded)
        assert all(a.nbytes == 4096 for a in loaded)

    def test_empty_trace_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            save_trace(tmp_path / "empty.npz", [])

    def test_file_is_compact(self, tmp_path):
        trace = list(ycsb_trace(YCSBConfig(
            mix="C", num_pages=1_000, num_ops=10_000, seed=2)))
        path = tmp_path / "big.npz"
        save_trace(path, trace)
        # Well under 10 bytes/access once compressed.
        assert path.stat().st_size < 10 * len(trace)


class TestProfiling:
    def test_basic_counts(self):
        trace = [Access(page_id=0), Access(page_id=0, write=True),
                 Access(page_id=1, is_scan=True, nbytes=4096)]
        profile = profile_trace(trace)
        assert profile.accesses == 3
        assert profile.footprint_pages == 2
        assert profile.read_ratio == pytest.approx(2 / 3)
        assert profile.scan_share == pytest.approx(1 / 3)
        assert profile.bytes_touched == 64 + 64 + 4096

    def test_zipf_trace_is_tierable(self):
        trace = ycsb_trace(YCSBConfig(
            mix="C", num_pages=10_000, num_ops=20_000, theta=0.99,
            seed=3))
        profile = profile_trace(trace)
        assert profile.hot_10pct_share > 0.5
        assert profile.tierable

    def test_uniform_trace_is_not_tierable(self):
        trace = ycsb_trace(YCSBConfig(
            mix="C", num_pages=10_000, num_ops=20_000, theta=0.0,
            seed=3))
        profile = profile_trace(trace)
        assert not profile.tierable

    def test_hot_shares_monotone(self):
        trace = ycsb_trace(YCSBConfig(
            mix="B", num_pages=5_000, num_ops=10_000, seed=4))
        profile = profile_trace(trace)
        assert profile.hot_1pct_share <= profile.hot_10pct_share <= 1.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            profile_trace([])
