"""Coverage for the trace combinators in ``workloads.traces``.

Scalar semantics (weights, uneven exhaustion, truncation, timestamp
merging, metrics batching) plus their block-aware twins, which must
be elementwise-equivalent on expanded content.
"""

import pytest

from repro.sim.context import SimContext
from repro.workloads.traces import (
    Access,
    AccessBlock,
    accesses_to_blocks,
    blocks_to_accesses,
    instrumented,
    interleave,
    merge_timed,
    take,
)


def pages(trace):
    return [a.page_id for a in blocks_to_accesses(trace)]


def blockify(accesses, block_ops=3):
    return list(accesses_to_blocks(iter(accesses), block_ops=block_ops))


class TestInterleave:
    def test_weights_shape_ratio(self):
        a = [Access(page_id=i) for i in range(6)]
        b = [Access(page_id=i + 100) for i in range(3)]
        merged = pages(interleave(a, b, weights=[2, 1]))
        assert merged == [0, 1, 100, 2, 3, 101, 4, 5, 102]

    def test_uneven_exhaustion_drains_survivors(self):
        # Trace a dies mid-round; b must keep its weight-2 cadence
        # alone until drained.
        a = [Access(page_id=i) for i in range(3)]
        b = [Access(page_id=i + 10) for i in range(8)]
        merged = pages(interleave(a, b, weights=[2, 2]))
        assert merged == [0, 1, 10, 11, 2, 12, 13, 14, 15, 16, 17]

    def test_block_interleave_matches_scalar(self):
        a = [Access(page_id=i, think_ns=1.0) for i in range(11)]
        b = [Access(page_id=i + 50, write=True) for i in range(4)]
        c = [Access(page_id=i + 90, is_scan=True, nbytes=4096)
             for i in range(7)]
        scalar = list(interleave(a, b, c, weights=[3, 1, 2]))
        blocks = interleave(blockify(a), blockify(b, 2), blockify(c, 5),
                            weights=[3, 1, 2])
        assert list(blocks_to_accesses(blocks)) == scalar

    def test_mixed_scalar_and_block_inputs(self):
        a = [Access(page_id=i) for i in range(4)]
        b = [Access(page_id=i + 10) for i in range(4)]
        merged = pages(interleave(blockify(a), b))
        assert merged == pages(interleave(a, b))

    def test_empty_trace_participates_harmlessly(self):
        a = []
        b = [Access(page_id=i) for i in range(3)]
        assert pages(interleave(a, b)) == [0, 1, 2]
        assert pages(interleave(blockify(b), [])) == [0, 1, 2]

    def test_weight_arity_checked(self):
        with pytest.raises(ValueError):
            list(interleave([], [], weights=[1]))


class TestTake:
    def test_take_past_end_of_trace(self):
        trace = [Access(page_id=i) for i in range(4)]
        assert pages(take(trace, 10)) == [0, 1, 2, 3]
        assert pages(take(iter([]), 5)) == []

    def test_take_exact_and_zero(self):
        trace = [Access(page_id=i) for i in range(4)]
        assert pages(take(trace, 4)) == [0, 1, 2, 3]
        assert pages(take(trace, 0)) == []

    def test_take_stops_pulling_after_n(self):
        pulled = []

        def generator():
            for i in range(100):
                pulled.append(i)
                yield Access(page_id=i)

        assert pages(take(generator(), 3)) == [0, 1, 2]
        assert len(pulled) <= 4

    def test_take_blocks_truncates_at_access_granularity(self):
        trace = [Access(page_id=i) for i in range(10)]
        out = list(take(blockify(trace, 4), 6))
        assert all(type(b) is AccessBlock for b in out)
        assert pages(out) == [0, 1, 2, 3, 4, 5]
        assert pages(take(blockify(trace, 4), 25)) == list(range(10))


class TestMergeTimed:
    def test_orders_by_timestamp(self):
        a = [(1.0, Access(page_id=1)), (4.0, Access(page_id=4))]
        b = [(2.0, Access(page_id=2)), (3.0, Access(page_id=3)),
             (9.0, Access(page_id=9))]
        merged = list(merge_timed(a, b))
        assert [t for t, _ in merged] == [1.0, 2.0, 3.0, 4.0, 9.0]
        assert [a.page_id for _, a in merged] == [1, 2, 3, 4, 9]

    def test_stable_for_equal_timestamps(self):
        a = [(1.0, Access(page_id=1))]
        b = [(1.0, Access(page_id=2))]
        assert [x.page_id for _, x in merge_timed(a, b)] == [1, 2]


class TestInstrumented:
    def _trace(self, n):
        return [
            Access(page_id=i, write=(i % 2 == 0),
                   is_scan=(i % 4 == 0), nbytes=10)
            for i in range(n)
        ]

    def _counts(self, ctx, name):
        metrics = ctx.metrics
        return {
            key: metrics.get(f"workload.{name}.{key}")
            for key in ("accesses", "writes", "scans", "bytes")
        }

    def test_exact_batch_multiple_flushes_everything(self):
        # 8 ops with batch=4: the last flush happens *inside* the
        # loop; the remainder path must not double-count or drop.
        ctx = SimContext()
        consumed = list(instrumented(self._trace(8), ctx, name="t",
                                     batch=4))
        assert len(consumed) == 8
        assert self._counts(ctx, "t") == {
            "accesses": 8, "writes": 4, "scans": 2, "bytes": 80}

    def test_remainder_flush(self):
        ctx = SimContext()
        list(instrumented(self._trace(10), ctx, name="t", batch=4))
        assert self._counts(ctx, "t") == {
            "accesses": 10, "writes": 5, "scans": 3, "bytes": 100}

    def test_empty_trace_counts_nothing(self):
        ctx = SimContext()
        assert list(instrumented([], ctx, name="t")) == []
        assert self._counts(ctx, "t")["accesses"] == 0

    def test_blocks_pass_through_and_count(self):
        ctx = SimContext()
        trace = blockify(self._trace(10), block_ops=4)
        out = list(instrumented(trace, ctx, name="t", batch=4))
        assert [type(item) for item in out] == [AccessBlock] * 3
        assert self._counts(ctx, "t") == {
            "accesses": 10, "writes": 5, "scans": 3, "bytes": 100}

    def test_mixed_stream_counts_once_each(self):
        ctx = SimContext()
        scalar = self._trace(6)
        mixed = scalar[:2] + blockify(scalar[2:5], 2) + scalar[5:]
        out = list(instrumented(mixed, ctx, name="t", batch=4))
        assert pages(out) == [0, 1, 2, 3, 4, 5]
        assert self._counts(ctx, "t")["accesses"] == 6
