"""TPC-C-lite transaction generation."""

import pytest

from repro.errors import ConfigError
from repro.workloads.tpcc import (
    RECORDS_PER_PAGE,
    TABLE_CARDINALITY,
    TPCCLite,
    RecordOp,
)


@pytest.fixture
def gen() -> TPCCLite:
    return TPCCLite(num_warehouses=4, remote_probability=0.1, seed=1)


class TestPageMapping:
    def test_pages_disjoint_across_tables(self, gen):
        seen = {}
        for table in TABLE_CARDINALITY:
            for warehouse in range(4):
                op = RecordOp(table, warehouse, 0)
                page = gen.page_of(op)
                key = (table, warehouse)
                assert page not in seen.values(), f"collision for {key}"
                seen[key] = page

    def test_keys_in_same_page_range(self, gen):
        first = gen.page_of(RecordOp("customer", 0, 0))
        last = gen.page_of(RecordOp(
            "customer", 0, TABLE_CARDINALITY["customer"] - 1))
        import math
        expected_pages = math.ceil(
            TABLE_CARDINALITY["customer"] / RECORDS_PER_PAGE["customer"])
        assert last - first == expected_pages - 1

    def test_shared_table_warehouse_minus_one(self, gen):
        page = gen.page_of(RecordOp("item", -1, 0))
        assert 0 <= page < gen.total_pages

    def test_unknown_table_rejected(self, gen):
        with pytest.raises(ConfigError):
            gen.page_of(RecordOp("ghost", 0, 0))

    def test_total_pages_positive(self, gen):
        assert gen.total_pages > 1_000


class TestTransactionMix:
    def test_profile_distribution(self):
        gen = TPCCLite(num_warehouses=4, seed=2)
        counts = {}
        for txn in gen.transactions(4_000):
            counts[txn.profile] = counts.get(txn.profile, 0) + 1
        assert counts["new_order"] / 4_000 == pytest.approx(0.45, abs=0.04)
        assert counts["payment"] / 4_000 == pytest.approx(0.43, abs=0.04)
        assert set(counts) == {"new_order", "payment", "order_status",
                               "delivery", "stock_level"}

    def test_new_order_shape(self):
        gen = TPCCLite(num_warehouses=2, seed=3)
        txn = gen._build_new_order(1)
        tables = [op.table for op in txn.ops]
        assert "warehouse" in tables
        assert "district" in tables
        assert tables.count("item") == tables.count("stock")
        assert 5 <= tables.count("item") <= 15
        assert txn.writes > 0

    def test_payment_writes_warehouse(self):
        gen = TPCCLite(num_warehouses=2, seed=3)
        txn = gen._build_payment(1)
        warehouse_ops = [op for op in txn.ops if op.table == "warehouse"]
        assert warehouse_ops and warehouse_ops[0].write

    def test_remote_probability_zero_means_local(self):
        gen = TPCCLite(num_warehouses=8, remote_probability=0.0, seed=4)
        assert not any(t.remote for t in gen.transactions(500))

    def test_remote_probability_produces_remote_txns(self):
        gen = TPCCLite(num_warehouses=8, remote_probability=0.5, seed=4)
        remote = sum(1 for t in gen.transactions(500) if t.remote)
        assert remote > 50

    def test_single_warehouse_never_remote(self):
        gen = TPCCLite(num_warehouses=1, remote_probability=1.0, seed=5)
        assert not any(t.remote for t in gen.transactions(200))

    def test_customer_skew(self):
        gen = TPCCLite(num_warehouses=1, seed=6)
        hot = sum(
            1 for _ in range(2_000)
            if gen._customer_key() < TABLE_CARDINALITY["customer"] // 10
        )
        assert hot / 2_000 > 0.55  # 60% + uniform tail

    def test_flat_trace_maps_to_pages(self):
        gen = TPCCLite(num_warehouses=2, seed=7)
        accesses = list(gen.flat_trace(50))
        assert accesses
        assert all(0 <= a.page_id < gen.total_pages for a in accesses)
        assert any(a.write for a in accesses)

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            TPCCLite(num_warehouses=0)
        with pytest.raises(ConfigError):
            TPCCLite(num_warehouses=1, remote_probability=1.5)

    def test_txn_ids_unique_and_increasing(self):
        gen = TPCCLite(num_warehouses=2, seed=8)
        ids = [t.txn_id for t in gen.transactions(100)]
        assert ids == sorted(set(ids))
