"""CPython-faithful bulk uniform streams (workloads/mtrand.py)."""

import random

import numpy as np
import pytest

from repro.workloads.cloudmix import CloudWorkload
from repro.workloads.mtrand import PyRandomStream, py_random_sample


class TestPyRandomStream:
    @pytest.mark.parametrize("seed", [0, 1, 7, 7 ^ 0xC10D, 123456,
                                      2**31 - 1, 2**33 + 5, 2**70 + 11])
    def test_matches_cpython_stream(self, seed):
        rng = random.Random(seed)
        expect = np.array([rng.random() for _ in range(700)])
        assert (py_random_sample(seed, 700) == expect).all()

    def test_pinned_stream_values(self):
        # Literal first draws of random.Random(7 ^ 0xC10D) — the write
        # coin-flip stream of the default-population tenant seed 7000.
        # If these move, every committed simulated digest moves.
        assert py_random_sample(7 ^ 0xC10D, 4).tolist() == [
            0.6726307774913098,
            0.6668456904742706,
            0.1712672343859063,
            0.4452563192049771,
        ]
        assert py_random_sample(0, 3).tolist() == [
            0.8444218515250481,
            0.7579544029403025,
            0.420571580830845,
        ]

    def test_consecutive_samples_continue_stream(self):
        stream = PyRandomStream(99)
        got = np.concatenate([stream.sample(13), stream.sample(0),
                              stream.sample(87)])
        rng = random.Random(99)
        assert (got == [rng.random() for _ in range(100)]).all()

    def test_negative_sample_size_rejected(self):
        with pytest.raises(ValueError):
            PyRandomStream(1).sample(-1)


class TestTraceBlocksWriteFlips:
    def test_write_flips_match_scalar_rng(self):
        wl = CloudWorkload(
            name="wl-x", klass="balanced", memory_share=0.1,
            working_set_pages=500, theta=0.9, read_ratio=0.65,
            num_ops=900, think_ns=100.0, seed=4242,
        )
        writes = np.concatenate(
            [blk.write for blk in wl.trace_blocks(block_ops=128)])
        rng = random.Random(4242 ^ 0xC10D)
        expect = np.array([rng.random() >= 0.65 for _ in range(900)])
        assert (writes == expect).all()
