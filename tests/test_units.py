"""Unit-convention helpers."""

import pytest

from repro import units


class TestSizes:
    def test_kib(self):
        assert units.kib(4) == 4096

    def test_mib(self):
        assert units.mib(1) == 1024 ** 2

    def test_gib(self):
        assert units.gib(2) == 2 * 1024 ** 3

    def test_fractional_gib(self):
        assert units.gib(0.5) == 512 * 1024 ** 2

    def test_page_and_line_constants(self):
        assert units.PAGE_SIZE == 4096
        assert units.CACHE_LINE == 64


class TestTime:
    def test_us(self):
        assert units.us(2.5) == 2500.0

    def test_ms(self):
        assert units.ms(1) == 1_000_000.0

    def test_seconds(self):
        assert units.seconds(0.001) == units.ms(1)


class TestBandwidthConvention:
    def test_one_gbps_is_one_byte_per_ns(self):
        assert units.GBPS == 1.0

    def test_transfer_time_identity(self):
        # 1 GiB at 1 GB/s should take ~1.07 s.
        t = units.transfer_time_ns(units.gib(1), 1.0 * units.GBPS)
        assert t == pytest.approx(1.074e9, rel=0.01)

    def test_transfer_time_scales_inversely(self):
        slow = units.transfer_time_ns(4096, 1.0)
        fast = units.transfer_time_ns(4096, 4.0)
        assert slow == pytest.approx(4 * fast)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            units.transfer_time_ns(100, 0.0)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            units.transfer_time_ns(100, -1.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            units.transfer_time_ns(-1, 1.0)

    def test_zero_size_is_instant(self):
        assert units.transfer_time_ns(0, 5.0) == 0.0


class TestFormatting:
    def test_fmt_bytes_bytes(self):
        assert units.fmt_bytes(17) == "17 B"

    def test_fmt_bytes_gib(self):
        assert units.fmt_bytes(3 * units.GIB) == "3.0 GiB"

    def test_fmt_ns_ns(self):
        assert units.fmt_ns(85.0) == "85 ns"

    def test_fmt_ns_us(self):
        assert units.fmt_ns(2500.0) == "2.50 us"

    def test_fmt_ns_ms(self):
        assert units.fmt_ns(3.2e6) == "3.20 ms"

    def test_fmt_ns_s(self):
        assert units.fmt_ns(1.5e9) == "1.500 s"
