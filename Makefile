PYTHON ?= python
export PYTHONPATH := src

.PHONY: verify test lint bench sweep perfbench trace-demo clean

# The tier-1 gate: what CI runs and what every change must keep green.
verify: test lint

test:
	$(PYTHON) -m pytest -x -q

lint:
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping lint"; \
	fi

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# The gated scenario sweeps (mirrors the CI sweep job): E1/E2/E4/E7
# plus the A7 interference grid and the A8 Pond-at-scale serving grid
# fan out across workers, results land in results/sweeps/, and each
# sweep's baseline shape invariants must hold.
sweep:
	$(PYTHON) -m repro sweep specs/e1_paths.json specs/e2_tiering.json \
		specs/e4_transfer_ladder.json specs/e7_distribution.json \
		specs/a7_interference.json specs/a8_pondscale.json \
		--jobs 4 --gate

# Wall-clock microbenchmarks of the simulator fast lane, gated against
# results/bench/BENCH_PR10.json (lane equivalence, digest identity,
# speedup floors). See docs/performance.md.
perfbench:
	$(PYTHON) -m repro perfbench --check

# Perf trajectory across committed baselines (results/bench/BENCH_PR*):
# per-bench speedup table with regressions listed before wins, gated
# against results/bench/TARGETS.json (floors, geomean, ratchet).
perfbench-history:
	$(PYTHON) -m repro perfbench --history

trace-demo:
	$(PYTHON) examples/quickstart.py --trace-out quickstart.trace.json

clean:
	rm -rf .pytest_cache .ruff_cache quickstart.trace.json
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
