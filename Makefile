PYTHON ?= python
export PYTHONPATH := src

.PHONY: verify test lint bench trace-demo clean

# The tier-1 gate: what CI runs and what every change must keep green.
verify: test lint

test:
	$(PYTHON) -m pytest -x -q

lint:
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping lint"; \
	fi

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

trace-demo:
	$(PYTHON) examples/quickstart.py --trace-out quickstart.trace.json

clean:
	rm -rf .pytest_cache .ruff_cache quickstart.trace.json
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
