"""Legacy setup shim for offline editable installs (`--no-use-pep517`)."""

from setuptools import setup

setup()
